"""Tests for the recurring (multi-window) simulation."""

import pytest

from repro.core.optimizer import OptimizerConfig
from repro.cost.memo import PlanCostModel
from repro.engine.stream import StreamConfig
from repro.errors import OptimizationError
from repro.harness import recurring as recurring_mod
from repro.harness.recurring import RecurringSimulation
from repro.workloads.tpch import build_workload, generate_catalog

from .util import (
    make_toy_catalog,
    toy_query_max,
    toy_query_region,
    toy_query_total,
)

NAMES = ("Q1", "Q6", "Q12", "Q18")


@pytest.fixture(scope="module")
def simulation():
    return RecurringSimulation(
        make_catalog=lambda day: generate_catalog(scale=0.12, seed=100 + day),
        make_queries=lambda catalog: build_workload(catalog, NAMES),
        config=OptimizerConfig(max_pace=12, stream_config=StreamConfig()),
    )


class TestRecurringSimulation:
    def test_runs_requested_days(self, simulation):
        outcomes = simulation.run(3, {qid: 0.5 for qid in range(len(NAMES))})
        assert [o.day for o in outcomes] == [0, 1, 2]
        assert all(o.total_work > 0 for o in outcomes)

    def test_goals_from_history_keep_misses_bounded(self, simulation):
        outcomes = simulation.run(3, {qid: 0.5 for qid in range(len(NAMES))})
        for outcome in outcomes:
            # day-to-day data drift is mild at a fixed scale; historical
            # goals remain achievable within cost-model error
            assert outcome.missed.mean_percent < 60

    def test_pace_configs_stable_across_days(self, simulation):
        """Same query batch + same scale -> similar chosen paces."""
        outcomes = simulation.run(3, {qid: 0.2 for qid in range(len(NAMES))})
        day1 = sorted(outcomes[1].pace_config.values())
        day2 = sorted(outcomes[2].pace_config.values())
        assert len(day1) == len(day2)

    def test_day_outcomes_carry_slack_entries(self, simulation):
        outcomes = simulation.run(2, {qid: 0.5 for qid in range(len(NAMES))})
        for outcome in outcomes:
            assert set(outcome.slack) == set(range(len(NAMES)))
            for entry in outcome.slack.values():
                assert entry["headroom_work"] == pytest.approx(
                    entry["goal_work"] - entry["final_work"]
                )
                # the eager (uniform max pace) estimate always exists here
                assert "deferred_work" in entry
                assert entry["missed"] == (
                    entry["final_work"] > entry["goal_work"]
                )
        # day 1's ledger has two points per query: drift is fitted
        drifts = [
            entry["drift_work_per_window"]
            for entry in outcomes[1].slack.values()
        ]
        assert len(drifts) == len(NAMES)

    def test_rejects_non_positive_days(self, simulation):
        for days in (0, -3, 1.5, True, "2"):
            with pytest.raises(OptimizationError, match="positive whole number"):
                simulation.run(days, {0: 0.5})

    def test_feedback_survives_decomposition(self, monkeypatch):
        """Regression: a decomposed day used to drop its feedback.

        When decomposition rewrote the plan, ``plan_out is not plan`` and
        the measured run was silently discarded -- the next day optimized
        with raw estimates.  The measured work must instead be folded
        back onto the pre-decomposition sids through the surgery lineage.
        """
        from repro.core.decompose import DecompositionOutcome
        from repro.core.regenerate import SplitLineage, apply_split

        def forced_decompose(plan, pace_config, constraints, max_pace,
                             cost_config=None, enable_partial=True,
                             cost_model=None):
            target = next(
                s for s in plan.subplans if len(s.query_ids()) >= 2
            )
            qids = sorted(target.query_ids())
            lineage = SplitLineage()
            new_plan, new_paces = apply_split(
                plan, pace_config, target.sid,
                [(qids[0],), tuple(qids[1:])], lineage=lineage,
            )
            return DecompositionOutcome(
                new_plan, new_paces, None, None, ["forced split"],
                sid_origin=lineage.origin,
                tainted_origins=lineage.tainted,
            )

        monkeypatch.setattr(
            recurring_mod, "decompose_full_plan", forced_decompose
        )
        feedback_calls = []
        original = PlanCostModel.apply_feedback

        def spy(self, run_result, pace_config):
            feedback_calls.append(run_result)
            return original(self, run_result, pace_config)

        monkeypatch.setattr(PlanCostModel, "apply_feedback", spy)

        # toy_query_max shares nothing with the split target, so its
        # subplans survive the surgery untainted and must keep feeding
        # measurements even though the split pieces degrade to "absent"
        sim = RecurringSimulation(
            make_catalog=lambda day: make_toy_catalog(seed=300 + day),
            make_queries=lambda catalog: [
                toy_query_total(catalog, 0),
                toy_query_region(catalog, 1),
                toy_query_max(catalog, 2),
            ],
            config=OptimizerConfig(
                max_pace=8, enable_unshare=True, stream_config=StreamConfig()
            ),
        )
        outcomes = sim.run(2, {0: 0.5, 1: 0.5, 2: 0.5})
        assert outcomes[0].actions == ["forced split"]  # day 0 decomposed
        assert feedback_calls, "day 1 must receive day 0's folded feedback"
        sample = feedback_calls[0]
        assert sample is not None
        assert sample.subplan_total_work, "folded measurement is non-empty"

    def test_feedback_toggle(self):
        sim = RecurringSimulation(
            make_catalog=lambda day: generate_catalog(scale=0.1, seed=200 + day),
            make_queries=lambda catalog: build_workload(catalog, ("Q1", "Q6")),
            config=OptimizerConfig(max_pace=8, stream_config=StreamConfig()),
            use_feedback=False,
        )
        outcomes = sim.run(2, {0: 0.5, 1: 0.5})
        assert len(outcomes) == 2
