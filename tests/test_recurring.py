"""Tests for the recurring (multi-window) simulation."""

import pytest

from repro.core.optimizer import OptimizerConfig
from repro.engine.stream import StreamConfig
from repro.harness.recurring import RecurringSimulation
from repro.workloads.tpch import build_workload, generate_catalog

NAMES = ("Q1", "Q6", "Q12", "Q18")


@pytest.fixture(scope="module")
def simulation():
    return RecurringSimulation(
        make_catalog=lambda day: generate_catalog(scale=0.12, seed=100 + day),
        make_queries=lambda catalog: build_workload(catalog, NAMES),
        config=OptimizerConfig(max_pace=12, stream_config=StreamConfig()),
    )


class TestRecurringSimulation:
    def test_runs_requested_days(self, simulation):
        outcomes = simulation.run(3, {qid: 0.5 for qid in range(len(NAMES))})
        assert [o.day for o in outcomes] == [0, 1, 2]
        assert all(o.total_work > 0 for o in outcomes)

    def test_goals_from_history_keep_misses_bounded(self, simulation):
        outcomes = simulation.run(3, {qid: 0.5 for qid in range(len(NAMES))})
        for outcome in outcomes:
            # day-to-day data drift is mild at a fixed scale; historical
            # goals remain achievable within cost-model error
            assert outcome.missed.mean_percent < 60

    def test_pace_configs_stable_across_days(self, simulation):
        """Same query batch + same scale -> similar chosen paces."""
        outcomes = simulation.run(3, {qid: 0.2 for qid in range(len(NAMES))})
        day1 = sorted(outcomes[1].pace_config.values())
        day2 = sorted(outcomes[2].pace_config.values())
        assert len(day1) == len(day2)

    def test_feedback_toggle(self):
        sim = RecurringSimulation(
            make_catalog=lambda day: generate_catalog(scale=0.1, seed=200 + day),
            make_queries=lambda catalog: build_workload(catalog, ("Q1", "Q6")),
            config=OptimizerConfig(max_pace=8, stream_config=StreamConfig()),
            use_feedback=False,
        )
        outcomes = sim.run(2, {0: 0.5, 1: 0.5})
        assert len(outcomes) == 2
