"""Tests for the measured-execution feedback calibration of the cost model."""

import pytest

from repro.cost.memo import (
    FEEDBACK_FACTOR_MAX,
    FEEDBACK_FACTOR_MIN,
    PlanCostModel,
    clamp_feedback_factor,
)
from repro.cost.model import CostConfig
from repro.engine.calibrate import calibrate_plan
from repro.engine.executor import PlanExecutor
from repro.engine.stream import StreamConfig
from repro.mqo.merge import MQOOptimizer

from .util import make_toy_catalog, toy_query_region, toy_query_total


@pytest.fixture(scope="module")
def setup():
    catalog = make_toy_catalog(seed=41)
    queries = [toy_query_total(catalog, 0), toy_query_region(catalog, 1)]
    plan = MQOOptimizer(catalog).build_shared_plan(queries)
    config = StreamConfig()
    calibrate_plan(plan, config)
    model = PlanCostModel(plan, CostConfig(state_factor=config.state_factor))
    executor = PlanExecutor(plan, config)
    return plan, model, executor


class TestFeedback:
    def test_feedback_makes_estimate_exact_at_observed_config(self, setup):
        plan, model, executor = setup
        paces = {s.sid: 8 for s in plan.subplans}
        measured = executor.run(paces, collect_results=False)
        model.apply_feedback(measured, paces)
        corrected = model.evaluate(paces)
        assert corrected.total_work == pytest.approx(measured.total_work, rel=1e-6)
        for qid, final in measured.query_final_work.items():
            assert corrected.query_final_work[qid] == pytest.approx(final, rel=1e-6)

    def test_feedback_improves_nearby_configs(self, setup):
        plan, model, executor = setup
        observed = {s.sid: 8 for s in plan.subplans}
        nearby = {s.sid: 10 for s in plan.subplans}
        measured_nearby = executor.run(nearby, collect_results=False)
        model.apply_feedback(None, None)
        raw_error = abs(
            model.evaluate(nearby).total_work - measured_nearby.total_work
        )
        model.apply_feedback(executor.run(observed, collect_results=False), observed)
        corrected_error = abs(
            model.evaluate(nearby).total_work - measured_nearby.total_work
        )
        assert corrected_error <= raw_error * 1.5  # never much worse nearby

    def test_clearing_feedback_restores_raw_estimates(self, setup):
        plan, model, executor = setup
        paces = {s.sid: 4 for s in plan.subplans}
        model.apply_feedback(None, None)
        raw = model.evaluate(paces).total_work
        measured = executor.run(paces, collect_results=False)
        model.apply_feedback(measured, paces)
        assert model.evaluate(paces).total_work != pytest.approx(raw, rel=1e-9) or (
            raw == pytest.approx(measured.total_work)
        )
        model.apply_feedback(None, None)
        assert model.evaluate(paces).total_work == pytest.approx(raw)

    def test_measured_zero_work_calibrates_down(self, setup):
        """Regression: a measured 0.0 used to be conflated with "absent".

        ``if measured_total`` treated a subplan that verifiably did zero
        work like one that was never measured (factor 1.0); the estimate
        stayed inflated forever.  Zero against a positive estimate must
        calibrate down to the clamp floor.
        """
        plan, model, executor = setup

        class FakeRun:
            subplan_total_work = {s.sid: 0.0 for s in plan.subplans}
            subplan_final_work = {s.sid: 0.0 for s in plan.subplans}

        paces = {s.sid: 2 for s in plan.subplans}
        factors = model.apply_feedback(FakeRun(), paces)
        for total_factor, final_factor in factors.values():
            assert total_factor == FEEDBACK_FACTOR_MIN
            assert final_factor == FEEDBACK_FACTOR_MIN
        model.apply_feedback(None, None)

    def test_absent_measurement_keeps_factor_one(self, setup):
        """``None`` (sid missing from the run) still means "no data"."""
        plan, model, executor = setup

        class FakeRun:
            subplan_total_work = {}
            subplan_final_work = {}

        paces = {s.sid: 2 for s in plan.subplans}
        factors = model.apply_feedback(FakeRun(), paces)
        assert all(pair == (1.0, 1.0) for pair in factors.values())
        model.apply_feedback(None, None)

    def test_factors_clamped_to_documented_range(self, setup):
        plan, model, executor = setup

        class FakeRun:
            subplan_total_work = {s.sid: 1e12 for s in plan.subplans}
            subplan_final_work = {s.sid: 1e-12 for s in plan.subplans}

        paces = {s.sid: 2 for s in plan.subplans}
        factors = model.apply_feedback(FakeRun(), paces)
        for total_factor, final_factor in factors.values():
            assert total_factor == FEEDBACK_FACTOR_MAX
            assert FEEDBACK_FACTOR_MIN <= final_factor <= FEEDBACK_FACTOR_MAX
        model.apply_feedback(None, None)
        assert clamp_feedback_factor(0.0) == FEEDBACK_FACTOR_MIN
        assert clamp_feedback_factor(float("inf")) == FEEDBACK_FACTOR_MAX
        assert clamp_feedback_factor(1.0) == 1.0

    def test_feedback_returns_factors(self, setup):
        plan, model, executor = setup
        paces = {s.sid: 2 for s in plan.subplans}
        measured = executor.run(paces, collect_results=False)
        factors = model.apply_feedback(measured, paces)
        assert set(factors) == {s.sid for s in plan.subplans}
        for total_factor, final_factor in factors.values():
            assert 0.2 < total_factor < 5
            assert 0.2 < final_factor < 5
        model.apply_feedback(None, None)
