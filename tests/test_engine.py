"""Tests for buffers, streams, the executor and run metrics."""

from fractions import Fraction

import pytest
from hypothesis import given, settings, strategies as st

from repro.engine.buffers import Buffer
from repro.engine.compare import assert_results_close, normalize_rows, results_close
from repro.engine.executor import PlanExecutor, query_result_view
from repro.engine.metrics import (
    ZERO_GOAL_RELATIVE_MISS,
    MissedLatencySummary,
    missed_latency,
)
from repro.engine.stream import StreamConfig, TableStream, execution_fractions
from repro.errors import ExecutionError
from repro.mqo.merge import MQOOptimizer, build_blocking_cut_plan, build_unshared_plan
from repro.relational.tuples import Delta, INSERT

from .util import assert_plan_correct, make_toy_catalog


class TestBuffer:
    def test_reader_sees_only_new(self):
        buffer = Buffer("b")
        reader = buffer.reader()
        buffer.append([Delta((1,), INSERT, 1)])
        assert len(reader.read_new()) == 1
        assert reader.read_new() == []
        buffer.append([Delta((2,), INSERT, 1), Delta((3,), INSERT, 1)])
        assert len(reader.read_new()) == 2

    def test_independent_readers(self):
        buffer = Buffer("b")
        early = buffer.reader()
        buffer.append([Delta((1,), INSERT, 1)])
        assert len(early.read_new()) == 1
        late = buffer.reader()
        assert len(late.read_new()) == 1
        assert early.remaining() == 0


class TestStream:
    def test_execution_fractions(self):
        assert execution_fractions(1) == [Fraction(1)]
        assert execution_fractions(4) == [
            Fraction(1, 4), Fraction(1, 2), Fraction(3, 4), Fraction(1),
        ]

    def test_pace_must_be_positive(self):
        with pytest.raises(ValueError):
            execution_fractions(0)

    def test_table_stream_delivers_prefixes(self, toy_catalog):
        stream = TableStream(toy_catalog.get("items"))
        total = stream.total_rows()
        first = stream.deltas_until(Fraction(1, 2))
        assert len(first) == total // 2
        rest = stream.deltas_until(Fraction(1))
        assert len(first) + len(rest) == total
        assert stream.deltas_until(Fraction(1)) == []

    def test_stream_config_seconds(self):
        config = StreamConfig(work_rate=100.0)
        assert config.seconds(250.0) == 2.5


class TestExecutorCorrectness:
    """Incremental execution at any pace must match batch results."""

    @pytest.mark.parametrize("pace", [1, 2, 3, 5, 8, 13])
    def test_unshared_plan_all_paces(self, toy_catalog, toy_queries, toy_reference, pace):
        plan = build_unshared_plan(toy_catalog, toy_queries)
        assert_plan_correct(
            plan, toy_queries, toy_reference,
            paces={s.sid: pace for s in plan.subplans},
        )

    @pytest.mark.parametrize("pace", [1, 2, 5, 9])
    def test_shared_plan_all_paces(self, toy_catalog, toy_queries, toy_reference, pace):
        plan = MQOOptimizer(toy_catalog).build_shared_plan(toy_queries)
        assert_plan_correct(
            plan, toy_queries, toy_reference,
            paces={s.sid: pace for s in plan.subplans},
        )

    @pytest.mark.parametrize("pace", [1, 4, 7])
    def test_blocking_cut_plan_all_paces(self, toy_catalog, toy_queries, toy_reference, pace):
        plan = build_blocking_cut_plan(toy_catalog, toy_queries)
        assert_plan_correct(
            plan, toy_queries, toy_reference,
            paces={s.sid: pace for s in plan.subplans},
        )

    def test_nonuniform_paces_parent_lazier(self, toy_catalog, toy_queries, toy_reference):
        plan = MQOOptimizer(toy_catalog).build_shared_plan(toy_queries)
        paces = {}
        for subplan in plan.topological_order():
            children = subplan.child_subplans()
            paces[subplan.sid] = 12 if not children else min(
                paces[c.sid] for c in children
            ) // 2 or 1
        assert_plan_correct(plan, toy_queries, toy_reference, paces=paces)

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_randomized_paces_property(self, toy_catalog, toy_queries, toy_reference, seed):
        import random

        rng = random.Random(seed)
        plan = MQOOptimizer(toy_catalog).build_shared_plan(toy_queries)
        paces = {}
        for subplan in plan.topological_order():
            children = subplan.child_subplans()
            upper = min((paces[c.sid] for c in children), default=10)
            paces[subplan.sid] = rng.randint(1, max(upper, 1))
        assert_plan_correct(plan, toy_queries, toy_reference, paces=paces)


class TestExecutorMechanics:
    def test_rejects_missing_pace(self, toy_catalog, toy_queries):
        plan = build_unshared_plan(toy_catalog, toy_queries)
        executor = PlanExecutor(plan)
        with pytest.raises(ExecutionError, match="no pace"):
            executor.run({})

    def test_rejects_parent_eagerer_than_child(self, toy_catalog):
        from .util import toy_query_max

        query = toy_query_max(toy_catalog, 0)
        plan = build_blocking_cut_plan(toy_catalog, [query])
        executor = PlanExecutor(plan)
        root = plan.query_roots[0]
        child = root.child_subplans()[0]
        with pytest.raises(ExecutionError, match="pace"):
            executor.run({root.sid: 4, child.sid: 2})

    def test_total_work_is_sum_of_records(self, toy_catalog, toy_queries):
        plan = build_unshared_plan(toy_catalog, toy_queries)
        run = PlanExecutor(plan).run(
            {s.sid: 3 for s in plan.subplans}, collect_results=False
        )
        assert run.total_work == pytest.approx(
            sum(record.work for record in run.records)
        )
        assert len(run.records) == 3 * len(plan.subplans)

    def test_final_work_is_last_execution(self, toy_catalog, toy_queries):
        plan = build_unshared_plan(toy_catalog, toy_queries)
        run = PlanExecutor(plan).run(
            {s.sid: 4 for s in plan.subplans}, collect_results=False
        )
        for subplan in plan.subplans:
            finals = [
                r for r in run.executions_of(subplan.sid) if r.fraction == Fraction(1)
            ]
            assert len(finals) == 1
            assert run.subplan_final_work[subplan.sid] == pytest.approx(
                finals[0].latency_work
            )

    def test_eager_execution_costs_more_total(self, toy_catalog, toy_queries):
        plan = build_unshared_plan(toy_catalog, toy_queries)
        executor = PlanExecutor(plan)
        lazy = executor.run({s.sid: 1 for s in plan.subplans}, collect_results=False)
        eager = executor.run({s.sid: 16 for s in plan.subplans}, collect_results=False)
        assert eager.total_work > lazy.total_work

    def test_eager_execution_cuts_final_work(self, toy_catalog, toy_queries):
        plan = build_unshared_plan(toy_catalog, toy_queries)
        executor = PlanExecutor(plan)
        lazy = executor.run({s.sid: 1 for s in plan.subplans}, collect_results=False)
        eager = executor.run({s.sid: 16 for s in plan.subplans}, collect_results=False)
        # queries 0/1 are scan/join/agg pipelines: eagerness reduces their
        # final work; query 2 (MAX over SUM) is the non-incrementable one
        for qid in (0, 1):
            assert eager.query_final_work[qid] < lazy.query_final_work[qid]

    def test_latency_seconds_conversion(self, toy_catalog, toy_queries):
        config = StreamConfig(work_rate=1000.0)
        plan = build_unshared_plan(toy_catalog, toy_queries)
        run = PlanExecutor(plan, config).run(
            {s.sid: 1 for s in plan.subplans}, collect_results=False
        )
        qid = toy_queries[0].query_id
        assert run.query_latency_seconds(qid) == pytest.approx(
            run.query_final_work[qid] / 1000.0
        )


class TestQueryResultView:
    def test_projects_to_query_columns(self, toy_catalog, toy_queries):
        plan = MQOOptimizer(toy_catalog).build_shared_plan(toy_queries)
        run = PlanExecutor(plan).run({s.sid: 1 for s in plan.subplans})
        for query in toy_queries:
            rows = run.query_results[query.query_id]
            width = len(query.root.schema)
            assert all(len(row) == width for row in rows)


class TestMissedLatency:
    def test_missed_latency_basic(self):
        absolute, relative = missed_latency(12.0, 10.0)
        assert absolute == pytest.approx(2.0)
        assert relative == pytest.approx(0.2)

    def test_no_miss_clamps_to_zero(self):
        assert missed_latency(5.0, 10.0) == (0.0, 0.0)

    def test_zero_goal_with_positive_latency_is_fully_missed(self):
        # regression: this used to report relative 0.0 -- a "perfect"
        # score for a goal that was missed by an unbounded factor
        absolute, relative = missed_latency(5.0, 0.0)
        assert absolute == 5.0
        assert relative == ZERO_GOAL_RELATIVE_MISS

    def test_zero_goal_met_exactly_is_zero_miss(self):
        assert missed_latency(0.0, 0.0) == (0.0, 0.0)

    def test_zero_goal_miss_dominates_summary_maximum(self):
        summary = MissedLatencySummary()
        summary.add(12.0, 10.0)
        summary.add(5.0, 0.0)
        _, _, max_pct, max_sec = summary.row()
        assert max_pct == pytest.approx(ZERO_GOAL_RELATIVE_MISS * 100.0)
        assert max_sec == pytest.approx(5.0)

    def test_summary_rows(self):
        summary = MissedLatencySummary()
        summary.add(12.0, 10.0)
        summary.add(8.0, 10.0)
        mean_pct, mean_sec, max_pct, max_sec = summary.row()
        assert mean_sec == pytest.approx(1.0)
        assert max_sec == pytest.approx(2.0)
        assert mean_pct == pytest.approx(10.0)
        assert max_pct == pytest.approx(20.0)

    def test_empty_summary_is_zero(self):
        assert MissedLatencySummary().row() == (0.0, 0.0, 0.0, 0.0)


class TestResultComparison:
    def test_normalize_rounds_floats(self):
        a = {(1, 2.00000001): 1}
        b = {(1, 2.0): 1}
        assert normalize_rows(a) == normalize_rows(b)

    def test_results_close_detects_real_differences(self):
        assert not results_close({(1,): 1}, {(2,): 1})
        assert not results_close({(1,): 1}, {(1,): 2})

    def test_assert_results_close_message(self):
        with pytest.raises(AssertionError, match="only-left"):
            assert_results_close({(1,): 1}, {(2,): 1}, context="demo")

    def test_one_ulp_across_rounding_boundary_is_close(self):
        # 5e-05 rounds to 0.0001 at 4 digits while its 1-ulp lower
        # neighbor rounds to 0.0 -- the old round()-bucketed comparison
        # called these unequal
        import math

        x = 5e-05
        y = math.nextafter(x, 0.0)
        assert round(x, 4) != round(y, 4)  # the boundary the bug needs
        assert normalize_rows({("g", x): 1}) != normalize_rows({("g", y): 1})
        assert results_close({("g", x): 1}, {("g", y): 1})
        assert_results_close({("g", x): 1}, {("g", y): 1})

    def test_negative_zero_matches_positive_zero(self):
        assert results_close({(-0.0,): 1}, {(0.0,): 1})
        assert_results_close({("a", -0.0): 2}, {("a", 0.0): 2})

    def test_count_split_across_ulp_neighbors(self):
        # batch may net {v: 2} where incremental nets two rows one ulp
        # apart; tolerance matching must pair them up
        import math

        v = 123.456
        w = math.nextafter(v, 1000.0)
        assert results_close({(v,): 2}, {(v,): 1, (w,): 1})

    def test_relative_tolerance_scales_with_magnitude(self):
        big = 1.0e9
        assert results_close({(big,): 1}, {(big * (1 + 1e-9),): 1})
        assert not results_close({(big,): 1}, {(big * 1.01,): 1})

    def test_int_components_compare_exactly(self):
        # int results (counts, int sums) are exact on every path; a
        # one-off large count must not slip through the relative tolerance
        assert not results_close({(10_000_000,): 1}, {(10_000_001,): 1})

    def test_sign_mismatch_is_not_close(self):
        assert not results_close({(1.0,): 1}, {(1.0,): -1})

    def test_nan_matches_only_nan(self):
        nan = float("nan")
        assert results_close({(nan,): 1}, {(nan,): 1})
        assert not results_close({(nan,): 1}, {(0.0,): 1})
