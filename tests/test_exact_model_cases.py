"""Exactly-solvable cases where the cost model must match the engine.

For degenerate workloads (single group, uniform arrival, no joins) the
retract/insert churn is exactly computable: a global aggregate at pace k
emits 1 insert in the first execution and a retract+insert pair in each
of the remaining k-1 (when its value changes every window), i.e. 2k-1
records.  The analytic model must reproduce these numbers exactly, not
just approximately.
"""

import pytest

from repro.cost.memo import PlanCostModel
from repro.cost.model import CostConfig
from repro.engine.calibrate import calibrate_plan
from repro.engine.executor import PlanExecutor
from repro.engine.stream import StreamConfig
from repro.logical.builder import PlanBuilder
from repro.mqo.merge import build_unshared_plan
from repro.relational.expressions import agg_count, agg_sum, col
from repro.relational.schema import Schema, INT, FLOAT
from repro.relational.table import Catalog


def single_group_catalog(n_rows=120):
    catalog = Catalog()
    table = catalog.create("s", Schema.of(("k", INT), ("v", FLOAT)))
    for index in range(n_rows):
        table.append((0, float(index + 1)))  # strictly growing sum
    return catalog


def compiled_agg(executor, sid=0):
    unit = executor.compiled[sid]
    exec_op = unit.root_exec
    while not hasattr(exec_op, "groups"):
        exec_op = exec_op.child
    return exec_op


class TestGlobalAggregateChurn:
    @pytest.mark.parametrize("pace", [1, 2, 5, 10])
    def test_emission_count_is_2k_minus_1(self, pace):
        catalog = single_group_catalog()
        query = (
            PlanBuilder.scan(catalog, "s")
            .aggregate([], [agg_sum(col("v"), "total")])
            .as_query(0, "global_sum")
        )
        plan = build_unshared_plan(catalog, [query])
        executor = PlanExecutor(plan, StreamConfig(state_factor=0.0))
        run = executor.run({0: pace}, collect_results=False)
        emitted = sum(record.output_count for record in run.records)
        assert emitted == 2 * pace - 1

    @pytest.mark.parametrize("pace", [1, 4, 8])
    def test_model_matches_engine_exactly(self, pace):
        catalog = single_group_catalog()
        query = (
            PlanBuilder.scan(catalog, "s")
            .aggregate([], [agg_sum(col("v"), "total")])
            .as_query(0, "global_sum")
        )
        plan = build_unshared_plan(catalog, [query])
        config = StreamConfig(state_factor=0.0)
        calibrate_plan(plan, config)
        model = PlanCostModel(plan, CostConfig(state_factor=0.0))
        estimate = model.evaluate({0: pace})
        measured = PlanExecutor(plan, config).run({0: pace}, collect_results=False)
        assert estimate.total_work == pytest.approx(measured.total_work, rel=1e-9)
        assert estimate.query_final_work[0] == pytest.approx(
            measured.query_final_work[0], rel=1e-9
        )


class TestPerKeyAggregateChurn:
    """Every row its own group: no retracts regardless of pace."""

    @pytest.mark.parametrize("pace", [1, 3, 9])
    def test_unique_groups_emit_once(self, pace):
        catalog = Catalog()
        table = catalog.create("u", Schema.of(("k", INT), ("v", FLOAT)))
        for index in range(90):
            table.append((index, 1.0))
        query = (
            PlanBuilder.scan(catalog, "u")
            .aggregate(["k"], [agg_count("n")])
            .as_query(0, "per_key")
        )
        plan = build_unshared_plan(catalog, [query])
        executor = PlanExecutor(plan, StreamConfig(state_factor=0.0))
        run = executor.run({0: pace}, collect_results=False)
        emitted = sum(record.output_count for record in run.records)
        assert emitted == 90  # one insert per group, no churn ever


class TestLatencyProxyExactness:
    def test_final_work_is_last_window_only(self):
        catalog = single_group_catalog(n_rows=100)
        query = (
            PlanBuilder.scan(catalog, "s")
            .aggregate([], [agg_sum(col("v"), "total")])
            .as_query(0, "global_sum")
        )
        plan = build_unshared_plan(catalog, [query])
        config = StreamConfig(state_factor=0.0, execution_overhead=0.0)
        run = PlanExecutor(plan, config).run({0: 4}, collect_results=False)
        # final execution: scans 25 rows, agg processes 25, emits 2
        assert run.query_final_work[0] == pytest.approx(25 + 25 + 2)

    def test_total_work_decomposes_per_execution(self):
        catalog = single_group_catalog(n_rows=100)
        query = (
            PlanBuilder.scan(catalog, "s")
            .aggregate([], [agg_sum(col("v"), "total")])
            .as_query(0, "global_sum")
        )
        plan = build_unshared_plan(catalog, [query])
        config = StreamConfig(state_factor=0.0, execution_overhead=0.0)
        run = PlanExecutor(plan, config).run({0: 4}, collect_results=False)
        # each execution: 25 scanned + 25 aggregated + emissions (1,2,2,2)
        expected = 4 * 50 + (1 + 2 + 2 + 2)
        assert run.total_work == pytest.approx(expected)
