"""Focused tests for plan regeneration mechanics (paper section 4.2)."""

import pytest

from repro.core.decompose import total_missed_final_work, _improves
from repro.core.regenerate import apply_split
from repro.cost.memo import CostEvaluation
from repro.mqo.merge import MQOOptimizer
from repro.relational import bitvec

from .util import (
    assert_plan_correct,
    batch_reference,
    make_toy_catalog,
    toy_query_region,
    toy_query_total,
)


@pytest.fixture(scope="module")
def three_query_plan():
    catalog = make_toy_catalog(seed=61)
    queries = [
        toy_query_total(catalog, 0),
        toy_query_region(catalog, 1, region="EU"),
        toy_query_region(catalog, 2, region="US"),
    ]
    queries[2].name = "toy_region_us2"
    plan = MQOOptimizer(catalog).build_shared_plan(queries)
    return catalog, queries, plan


def _widest_shared(plan):
    return max(plan.shared_subplans(), key=lambda s: bitvec.popcount(s.query_mask))


class TestApplySplitMechanics:
    def test_figure8_parent_alignment(self, three_query_plan):
        """A parent spanning two partitions is split to align (Figure 8)."""
        catalog, queries, plan = three_query_plan
        shared = _widest_shared(plan)
        ids = shared.query_ids()
        assert len(ids) == 3
        # split so that queries 1 and 2 separate; their shared parent
        # aggregate (identical agg for both region queries) must be split
        paces = {s.sid: 4 for s in plan.subplans}
        parts = [(ids[0], ids[1]), (ids[2],)]
        new_plan, initial = apply_split(plan, paces, shared.sid, parts)
        new_plan.validate()
        for subplan in new_plan.subplans:
            for child in subplan.child_subplans():
                assert bitvec.subsumes(child.query_mask, subplan.query_mask)

    def test_single_consumer_pieces_get_merged(self, three_query_plan):
        """After a full singleton split, per-query chains collapse."""
        catalog, queries, plan = three_query_plan
        shared = _widest_shared(plan)
        paces = {s.sid: 4 for s in plan.subplans}
        parts = [(qid,) for qid in shared.query_ids()]
        new_plan, initial = apply_split(plan, paces, shared.sid, parts)
        # merged subplans absorb their single-consumer children: every
        # remaining subplan is a query root or has >= 2 consumers
        for subplan in new_plan.subplans:
            is_root = any(r is subplan for r in new_plan.query_roots.values())
            if not is_root:
                assert new_plan.consumer_count(subplan) >= 2

    def test_merge_keeps_larger_pace(self, three_query_plan):
        catalog, queries, plan = three_query_plan
        shared = _widest_shared(plan)
        paces = {s.sid: 1 for s in plan.subplans}
        paces[shared.sid] = 9  # pieces inherit 9; parents at 1: merged -> 9
        parts = [(qid,) for qid in shared.query_ids()]
        new_plan, initial = apply_split(plan, paces, shared.sid, parts)
        new_sids = {s.sid for s in new_plan.subplans} - set(paces)
        assert new_sids
        assert all(initial[sid] >= 9 for sid in new_sids)

    def test_split_plan_runs_at_inherited_paces(self, three_query_plan):
        catalog, queries, plan = three_query_plan
        shared = _widest_shared(plan)
        paces = {s.sid: 3 for s in plan.subplans}
        parts = [(qid,) for qid in shared.query_ids()]
        new_plan, initial = apply_split(plan, paces, shared.sid, parts)
        # repair any parent>child violations introduced by inheritance
        for subplan in reversed(new_plan.topological_order()):
            for child in subplan.child_subplans():
                if initial[child.sid] < initial[subplan.sid]:
                    initial[child.sid] = initial[subplan.sid]
        reference = batch_reference(catalog, queries)
        assert_plan_correct(new_plan, queries, reference, paces=initial)

    def test_two_way_split_execution_correct(self, three_query_plan):
        catalog, queries, plan = three_query_plan
        shared = _widest_shared(plan)
        ids = shared.query_ids()
        paces = {s.sid: 2 for s in plan.subplans}
        parts = [(ids[0],), (ids[1], ids[2])]
        new_plan, initial = apply_split(plan, paces, shared.sid, parts)
        reference = batch_reference(catalog, queries)
        assert_plan_correct(
            new_plan, queries, reference,
            paces={s.sid: 1 for s in new_plan.subplans},
        )


def _eval(total, finals):
    evaluation = CostEvaluation()
    evaluation.total_work = total
    evaluation.query_final_work = dict(finals)
    return evaluation


class TestFeasibilityFirstAcceptance:
    CONSTRAINTS = {0: 10.0, 1: 10.0}

    def test_missed_work_sums_violations(self):
        evaluation = _eval(100, {0: 15.0, 1: 5.0})
        assert total_missed_final_work(evaluation, self.CONSTRAINTS) == 5.0

    def test_less_missed_wins_despite_more_total(self):
        old = _eval(100, {0: 20.0, 1: 5.0})
        new = _eval(150, {0: 12.0, 1: 5.0})
        assert _improves(new, old, self.CONSTRAINTS)

    def test_more_missed_loses_despite_less_total(self):
        old = _eval(100, {0: 10.0, 1: 5.0})
        new = _eval(50, {0: 20.0, 1: 5.0})
        assert not _improves(new, old, self.CONSTRAINTS)

    def test_equal_feasibility_compares_total(self):
        old = _eval(100, {0: 5.0, 1: 5.0})
        better = _eval(90, {0: 8.0, 1: 5.0})
        worse = _eval(110, {0: 5.0, 1: 5.0})
        assert _improves(better, old, self.CONSTRAINTS)
        assert not _improves(worse, old, self.CONSTRAINTS)
