"""Observability layer: tracer, metrics registry, decision log, harness wiring."""

import json
import time

import pytest

from repro import obs
from repro.core.optimizer import OptimizerConfig, optimize_ishare
from repro.engine.stream import StreamConfig
from repro.harness.parallel import ExperimentCell, run_cells
from repro.harness.runner import ExperimentRunner
from repro.mqo.dot import plan_to_dot, run_annotations
from repro.obs import OBS
from repro.obs.declog import DecisionLog
from repro.obs.metrics import MetricsRegistry, metric_key
from repro.obs.trace import NOOP_SPAN, Tracer, span
from repro.workloads.constraints import uniform_constraints

from .util import (
    make_toy_catalog,
    toy_query_max,
    toy_query_region,
    toy_query_total,
)


@pytest.fixture(autouse=True)
def _clean_session():
    """Every test starts and ends with observability off."""
    obs.disable()
    yield
    obs.disable()


def _toy_runner(seed=23):
    catalog = make_toy_catalog(seed=seed)
    queries = [
        toy_query_total(catalog, 0),
        toy_query_region(catalog, 1, region="EU"),
        toy_query_max(catalog, 2),
        toy_query_region(catalog, 3, region="US"),
    ]
    config = OptimizerConfig(max_pace=6, stream_config=StreamConfig())
    return ExperimentRunner(catalog, queries, config)


def _toy_workload():
    catalog = make_toy_catalog(seed=7)
    queries = [
        toy_query_total(catalog, 0),
        toy_query_region(catalog, 1, region="EU"),
        toy_query_total(catalog, 2, day_filter=60),
    ]
    return catalog, queries


# -- the no-op (disabled) path ----------------------------------------------------


class TestDisabledPath:
    def test_collectors_are_none_when_disabled(self):
        assert not OBS.enabled
        assert OBS.tracer is None and OBS.metrics is None and OBS.declog is None

    def test_disabled_span_is_the_noop_singleton(self):
        assert span("anything", sid=3) is NOOP_SPAN
        with span("anything") as active:
            active.set(ignored=1)  # must be accepted and dropped

    def test_disabled_run_emits_nothing(self):
        runner = _toy_runner()
        runner.run_approach("iShare", uniform_constraints(range(4), 0.5))
        assert not OBS.enabled
        assert OBS.tracer is None

    def test_disabled_overhead_is_a_single_guard_check(self):
        """Micro-benchmark: the disabled path must stay within a small
        constant factor of a bare attribute test -- no allocation, no
        formatting, no dict lookups."""
        iterations = 200_000

        def guarded():
            enabled = 0
            for _ in range(iterations):
                if OBS.enabled:
                    enabled += 1
            return enabled

        def spanned():
            for _ in range(iterations):
                span("hot.loop")

        # warm up, then take the best of three to dampen scheduler noise
        guarded(), spanned()
        guard_s = min(_timed(guarded) for _ in range(3))
        span_s = min(_timed(spanned) for _ in range(3))
        # span() adds one function call over the bare guard; anything that
        # allocates a span object or formats args blows far past this
        assert span_s < max(10 * guard_s, 0.5), (
            "disabled span() too slow: %.4fs vs guard %.4fs" % (span_s, guard_s)
        )


def _timed(fn):
    started = time.perf_counter()
    fn()
    return time.perf_counter() - started


# -- tracer -----------------------------------------------------------------------


class TestTracer:
    def test_chrome_payload_shape(self, tmp_path):
        tracer = Tracer(process_name="test-proc")
        start = tracer.now_us()
        tracer.complete("unit.work", start, {"sid": 1})
        with_span = tracer.span("unit.span", kind="x")
        with with_span:
            with_span.set(done=True)
        path = tmp_path / "trace.json"
        tracer.export(str(path))
        payload = json.loads(path.read_text())
        events = payload["traceEvents"]
        assert events[0]["ph"] == "M"
        assert events[0]["args"]["name"] == "test-proc"
        complete = [e for e in events if e["ph"] == "X"]
        assert {e["name"] for e in complete} == {"unit.work", "unit.span"}
        for event in complete:
            assert set(event) >= {"name", "cat", "ph", "ts", "dur", "pid", "tid"}
            assert event["ts"] >= 0 and event["dur"] >= 0
        spanned = next(e for e in complete if e["name"] == "unit.span")
        assert spanned["args"] == {"kind": "x", "done": True}

    def test_category_is_span_name_prefix(self):
        tracer = Tracer()
        tracer.complete("engine.execute", 0.0, {})
        assert tracer.events[-1]["cat"] == "engine"

    def test_drain_keeps_process_metadata(self):
        tracer = Tracer(process_name="w")
        tracer.complete("a.b", 0.0, {})
        drained = tracer.drain_events()
        assert [e["name"] for e in drained] == ["process_name", "a.b"]
        # metadata survives the drain so later cells still identify the process
        assert [e["name"] for e in tracer.events] == ["process_name"]


# -- metrics registry -------------------------------------------------------------


class TestMetrics:
    def test_metric_key_sorts_labels(self):
        assert metric_key("m", {"b": 2, "a": 1}) == "m{a=1,b=2}"
        assert metric_key("m", {}) == "m"

    def test_counter_gauge_histogram_roundtrip(self):
        registry = MetricsRegistry()
        registry.counter("hits", sid=1).inc(3)
        registry.gauge("depth").set(7)
        registry.gauge("depth").set(4)
        registry.histogram("work").observe(2.0)
        registry.histogram("work").observe(4.0)
        snap = registry.snapshot()
        assert snap["hits{sid=1}"]["value"] == 3
        assert snap["depth"]["value"] == 4 and snap["depth"]["max"] == 7
        hist = snap["work"]
        assert hist["count"] == 2 and hist["sum"] == 6.0
        assert hist["min"] == 2.0 and hist["max"] == 4.0

    def test_kind_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(TypeError):
            registry.gauge("x")

    def test_sub_millisecond_observations_land_in_distinct_buckets(self):
        """Regression: the old single-bucket scheme collapsed everything
        below a millisecond; the log-spaced grid reaches 1e-6."""
        registry = MetricsRegistry()
        hist = registry.histogram("window.seconds")
        hist.observe(5e-4)
        hist.observe(2e-3)
        buckets = dict((bound, count) for bound, count in hist.buckets())
        assert buckets == {5e-4: 1, 2e-3: 1}

    def test_bucket_bounds_are_le_inclusive_with_overflow(self):
        from repro.obs.metrics import DEFAULT_BUCKETS

        hist = MetricsRegistry().histogram("work")
        hist.observe(DEFAULT_BUCKETS[0])  # exactly on a boundary: <= bound
        hist.observe(DEFAULT_BUCKETS[-1] * 10)  # beyond every bound
        assert hist.buckets() == [[DEFAULT_BUCKETS[0], 1], ["+Inf", 1]]

    def test_cumulative_buckets_end_with_inf(self):
        from repro.obs.metrics import cumulative_buckets

        assert cumulative_buckets([[1.0, 2], [5.0, 1]]) == [
            (1.0, 2), (5.0, 3), ("+Inf", 3)
        ]
        assert cumulative_buckets([]) == [("+Inf", 0)]

    def test_histogram_merge_folds_bucket_counts(self):
        ours, theirs = MetricsRegistry(), MetricsRegistry()
        ours.histogram("work").observe(1.5)
        theirs.histogram("work").observe(1.5)
        theirs.histogram("work").observe(1e9)  # +Inf overflow travels too
        ours.merge_snapshot(theirs.snapshot())
        assert ours.histogram("work").buckets() == [[2.0, 2], ["+Inf", 1]]

    def test_merge_tolerates_bucketless_payloads(self):
        """Snapshots from before histograms grew buckets still merge."""
        registry = MetricsRegistry()
        registry.histogram("work").observe(1.0)
        registry.merge_snapshot(
            {"work": {"type": "histogram", "count": 2, "sum": 6.0,
                      "min": 2.0, "max": 4.0}}
        )
        hist = registry.histogram("work")
        assert hist.count == 3 and hist.total == 7.0
        assert sum(count for _, count in hist.buckets()) == 1

    def test_merge_snapshot_adds_counters_and_merges_histograms(self):
        ours = MetricsRegistry()
        ours.counter("hits").inc(2)
        ours.histogram("work").observe(1.0)
        theirs = MetricsRegistry()
        theirs.counter("hits").inc(5)
        theirs.histogram("work").observe(3.0)
        theirs.gauge("occupancy").set(9)
        ours.merge_snapshot(theirs.snapshot())
        snap = ours.snapshot()
        assert snap["hits"]["value"] == 7
        assert snap["work"]["count"] == 2 and snap["work"]["max"] == 3.0
        assert snap["occupancy"]["value"] == 9


# -- decision log -----------------------------------------------------------------


class TestDecisionLog:
    def test_records_are_sequenced_and_exported_as_json_lines(self, tmp_path):
        log = DecisionLog()
        log.log("pace_move", sid=1, score=2.5)
        log.log("pace_reject", sid=2, reason="outscored")
        path = tmp_path / "decisions.jsonl"
        log.export(str(path))
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert [r["seq"] for r in lines] == [1, 2]
        assert lines[0]["event"] == "pace_move" and lines[0]["score"] == 2.5

    def test_extend_resequences_worker_records(self):
        driver, worker = DecisionLog(), DecisionLog()
        driver.log("pace_move", sid=0)
        worker.log("pace_move", sid=9)
        driver.extend(worker.records)
        assert [r["seq"] for r in driver.records] == [1, 2]

    def test_ishare_optimization_logs_every_stage(self):
        """Completeness: a small iShare run must log the pace search, the
        clustering decisions, and the decomposition verdicts."""
        catalog, queries = _toy_workload()
        obs.enable()
        config = OptimizerConfig(max_pace=6, stream_config=StreamConfig())
        optimize_ishare(
            catalog, queries, uniform_constraints(range(3), 0.3), config
        )
        kinds = {record["event"] for record in OBS.declog.records}
        assert "pace_move" in kinds or "pace_exhausted" in kinds
        assert "pace_search_done" in kinds
        assert "split_decision" in kinds
        # every decomposition proposal ends in an adopt or a reasoned reject
        verdicts = [
            r for r in OBS.declog.records
            if r["event"] in ("decompose_adopt", "decompose_reject")
        ]
        assert verdicts
        for record in verdicts:
            assert "sid" in record
            if record["event"] == "decompose_reject":
                assert record["reason"] in ("no_split", "not_improving")
        for record in OBS.declog.of_event("pace_move"):
            assert {"iteration", "pace", "incrementability", "total_work"} <= set(record)


# -- harness wiring ---------------------------------------------------------------


class TestHarnessWiring:
    def _cells(self, runner):
        relative = uniform_constraints(range(4), 0.5)
        return [
            ExperimentCell(name, relative)
            for name in ("iShare", "NoShare-Uniform", "Share-Uniform")
        ]

    def test_parallel_trace_covers_both_workers(self):
        runner = _toy_runner()
        obs.enable(process_name="driver")
        run_cells(runner, self._cells(runner), jobs=2)
        events = OBS.tracer.events
        worker_pids = {
            e["pid"] for e in events
            if e.get("ph") == "M" and e["args"]["name"].startswith("repro-worker-")
        }
        assert len(worker_pids) == 2
        span_pids = {e["pid"] for e in events if e.get("ph") == "X"}
        assert worker_pids <= span_pids

    def test_event_order_is_deterministic_under_jobs_2(self):
        """Two traced --jobs 2 runs produce the same event-name sequence:
        cells are statically assigned and absorbed in submission order, so
        nondeterministic completion order never reaches the trace."""
        sequences = []
        for _ in range(2):
            obs.disable()
            obs.enable(process_name="driver")
            runner = _toy_runner()
            run_cells(runner, self._cells(runner), jobs=2)
            names = [
                e["name"] for e in OBS.tracer.events if e.get("ph") == "X"
            ]
            sequences.append(names)
        assert sequences[0] == sequences[1]

    def test_decision_sequence_matches_serial(self):
        """The decision log is pure per-cell optimizer work, so the merged
        parallel sequence equals the serial one exactly."""
        sequences = []
        for jobs in (1, 2):
            obs.disable()
            obs.enable(process_name="driver")
            runner = _toy_runner()
            run_cells(runner, self._cells(runner), jobs=jobs)
            sequences.append([
                (r["seq"], r["event"]) for r in OBS.declog.records
            ])
        assert sequences[0] == sequences[1]

    def test_worker_metrics_are_merged_into_the_driver(self):
        runner = _toy_runner()
        obs.enable(process_name="driver")
        run_cells(runner, self._cells(runner), jobs=2)
        snap = OBS.metrics.snapshot()
        assert snap["cost.memo.hit"]["value"] > 0
        assert snap["engine.executions"]["value"] > 0
        assert any(key.startswith("engine.subplan.work_units{") for key in snap)

    def test_experiment_report_carries_metrics_block(self):
        from repro.harness.experiments import _attach_observability, ExperimentResult

        obs.enable()
        OBS.metrics.counter("cost.memo.hit").inc()
        result = _attach_observability(ExperimentResult("t"))
        assert "cost.memo.hit" in result.data["metrics"]
        obs.disable()
        bare = _attach_observability(ExperimentResult("t"))
        assert "metrics" not in bare.data


# -- dot annotations --------------------------------------------------------------


class TestDotAnnotations:
    def test_run_annotations_from_snapshot(self):
        snapshot = {
            "engine.subplan.work_units{kind=input,sid=4}":
                {"type": "counter", "value": 10},
            "engine.subplan.work_units{kind=output,sid=4}":
                {"type": "counter", "value": 5},
            "engine.subplan.executions{sid=4}":
                {"type": "counter", "value": 3},
            "cost.memo.hit": {"type": "counter", "value": 99},
        }
        annotations = run_annotations(snapshot, pace_config={4: 6, 7: 1})
        assert annotations[4]["work[input]"] == "10"
        assert annotations[4]["work"] == "15"
        assert annotations[4]["executions"] == "3"
        assert annotations[4]["pace"] == "6"
        assert annotations[7] == {"pace": "1"}

    def test_plan_to_dot_renders_annotations(self):
        from .util import shared_plan_for

        catalog, queries = _toy_workload()
        plan = shared_plan_for(catalog, queries)
        sid = plan.subplans[0].sid
        dot = plan_to_dot(plan, annotations={sid: {"pace": "4", "work": "12"}})
        assert "pace=4" in dot and "work=12" in dot
        # un-annotated plans render exactly as before
        assert "pace=" not in plan_to_dot(plan)
