"""Work-exact equivalence of the columnar backend against the batched path.

Mirror of ``test_hotpath_equivalence``: the columnar backend
(``engine_mode(columnar=True)``, docs/PERFORMANCE.md) must charge the
WorkMeter *exactly* like the batched path on the fig11 workload -- every
work/latency number bit-identical -- because both paths count the same
logical deltas, just in different memory layouts.  Query results are
compared with the engine's standard float tolerance (array segment sums
may associate differently).

The buffer segment passthrough (columnar producers park ``ColumnBatch``
segments in buffers; deltas materialize only when a plain consumer needs
them) gets direct unit coverage at the bottom.
"""

import pytest

from repro.engine.buffers import Buffer
from repro.engine.compare import assert_results_close
from repro.engine.executor import PlanExecutor
from repro.engine.stream import StreamConfig
from repro.physical.hotpath import (
    clear_compiled_caches,
    columnar_available,
    engine_mode,
)
from repro.relational.tuples import Delta
from repro.workloads.tpch import (
    ALL_QUERY_NAMES,
    add_lineitem_updates,
    build_workload,
    generate_catalog,
)

from .util import shared_plan_for

pytestmark = pytest.mark.skipif(
    not columnar_available(),
    reason="columnar backend needs numpy",
)


def work_fingerprint(result):
    """Every WorkMeter-derived surface of a RunResult, exact."""
    return {
        "total_work": result.total_work,
        "records": [
            (r.sid, r.fraction, r.work, r.latency_work, r.output_count)
            for r in result.records
        ],
        "subplan_total_work": result.subplan_total_work,
        "subplan_final_work": result.subplan_final_work,
        "query_final_work": result.query_final_work,
    }


@pytest.fixture(scope="module")
def fig11_setup():
    catalog = generate_catalog(scale=0.08, seed=5)
    add_lineitem_updates(catalog, fraction=0.05, seed=11)
    queries = build_workload(catalog, ALL_QUERY_NAMES)
    plan = shared_plan_for(catalog, queries)
    paces = {
        subplan.sid: 2 if subplan.child_subplans() else 6
        for subplan in plan.subplans
    }
    return plan, paces, queries


def run_with(plan, paces, **mode):
    clear_compiled_caches()
    with engine_mode(**mode):
        executor = PlanExecutor(plan, StreamConfig())
        return executor.run(paces)


def assert_columnar_equivalent(columnar, batched, queries):
    assert work_fingerprint(columnar) == work_fingerprint(batched)
    assert set(columnar.query_results) == set(batched.query_results)
    for query in queries:
        assert_results_close(
            columnar.query_results[query.query_id],
            batched.query_results[query.query_id],
            context="columnar vs batched: %s" % query.name,
        )


class TestFig11WorkIdentity:
    def test_columnar_matches_batched(self, fig11_setup):
        plan, paces, queries = fig11_setup
        batched = run_with(plan, paces, batched=True)
        columnar = run_with(plan, paces, batched=True, columnar=True)
        assert columnar.metadata["engine_mode"] == "columnar"
        assert batched.metadata["engine_mode"] == "batched"
        assert_columnar_equivalent(columnar, batched, queries)

    def test_uniform_pace_identity(self, fig11_setup):
        plan, _, queries = fig11_setup
        paces = {subplan.sid: 3 for subplan in plan.subplans}
        batched = run_with(plan, paces, batched=True)
        columnar = run_with(plan, paces, batched=True, columnar=True)
        assert_columnar_equivalent(columnar, batched, queries)

    def test_forced_vectorized_probe(self, fig11_setup, monkeypatch):
        # forcing the threshold to 0 exercises the arange/repeat
        # expansion on every batch, including the single-digit trickles
        # the default (measured-crossover) threshold keeps scalar -- it
        # must emit the exact same sequence (docs/PERFORMANCE.md)
        from repro.physical import columnar as columnar_mod

        plan, paces, queries = fig11_setup
        batched = run_with(plan, paces, batched=True)
        monkeypatch.setattr(columnar_mod, "SCALAR_PROBE_MAX", 0)
        columnar = run_with(plan, paces, batched=True, columnar=True)
        assert_columnar_equivalent(columnar, batched, queries)

    def test_forced_scalar_probe(self, fig11_setup, monkeypatch):
        # the inverse: a huge threshold keeps every batch on the scalar
        # dict-loop probe, which must also match batched exactly
        from repro.physical import columnar as columnar_mod

        plan, paces, queries = fig11_setup
        batched = run_with(plan, paces, batched=True)
        monkeypatch.setattr(columnar_mod, "SCALAR_PROBE_MAX", 1 << 30)
        columnar = run_with(plan, paces, batched=True, columnar=True)
        assert_columnar_equivalent(columnar, batched, queries)

    def test_fusion_on_off_bit_identical(self, fig11_setup):
        # fusion's contract is stronger than work-exact: a fused kernel
        # performs the same array ops in the same order as the unfused
        # chain, so *query results* must match bit for bit too, not just
        # within float tolerance (docs/PERFORMANCE.md, the fuzzer's
        # shared-columnar-nofuse oracle)
        plan, paces, _ = fig11_setup
        fused = run_with(plan, paces, batched=True, columnar=True,
                         fusion=True)
        unfused = run_with(plan, paces, batched=True, columnar=True,
                           fusion=False)
        assert work_fingerprint(fused) == work_fingerprint(unfused)
        assert fused.query_results == unfused.query_results
        assert fused.metadata == unfused.metadata

    def test_fused_kernels_actually_fire(self, fig11_setup):
        # guard against the bit-identity test passing vacuously because
        # fusion silently stopped engaging
        from repro.physical import fused, hotpath

        plan, paces, _ = fig11_setup
        clear_compiled_caches()
        with engine_mode(batched=True, columnar=True, fusion=True):
            assert fused.fusion_active()
            PlanExecutor(plan, StreamConfig()).run(paces)
            kernels = [
                artifact
                for (kind, _), artifact in hotpath._ARTIFACTS.items()
                if isinstance(kind, str) and kind.startswith("fused-")
            ]
        assert kernels, "no fused kernels were compiled during the run"
        assert all(hasattr(k, "fused_source") for k in kernels)


class TestModeFlipOnOneExecutor:
    def test_reused_executor_recompiles_across_backends(self, fig11_setup):
        """One reused executor flipped columnar -> batched -> columnar.

        The flip is the hard case for the buffer segment passthrough: a
        columnar run leaves no pending segments behind (every run ends
        with result collection), and the rebuilt batched tree must read
        the reset buffers identically.
        """
        plan, paces, queries = fig11_setup
        clear_compiled_caches()
        with engine_mode(batched=True, reuse_trees=True):
            executor = PlanExecutor(plan, StreamConfig())
            batched_first = executor.run(paces)
        with engine_mode(batched=True, reuse_trees=True, columnar=True):
            columnar = executor.run(paces)
        with engine_mode(batched=True, reuse_trees=True):
            batched_again = executor.run(paces)
        assert work_fingerprint(batched_first) == work_fingerprint(
            batched_again
        )
        assert batched_first.query_results == batched_again.query_results
        assert_columnar_equivalent(columnar, batched_first, queries)

    def test_columnar_tree_reuse_is_deterministic(self, fig11_setup):
        plan, paces, _ = fig11_setup
        clear_compiled_caches()
        with engine_mode(batched=True, reuse_trees=True, columnar=True):
            executor = PlanExecutor(plan, StreamConfig())
            first = executor.run(paces)
            second = executor.run(paces)  # reused columnar tree
            fresh = PlanExecutor(plan, StreamConfig()).run(paces)
        assert work_fingerprint(first) == work_fingerprint(second)
        assert work_fingerprint(first) == work_fingerprint(fresh)
        assert first.query_results == second.query_results == fresh.query_results


class TestBufferSegments:
    def _batch(self, n, start=0, bits=1):
        from repro.engine.columns import ColumnBatch

        return ColumnBatch.from_deltas(
            [Delta(("r%d" % (start + i),), 1, bits) for i in range(n)], 1
        )

    def test_segments_materialize_for_plain_readers(self):
        buffer = Buffer("b")
        reader = buffer.reader()
        buffer.append_segment(self._batch(4))
        buffer.append_segment(self._batch(3, start=4))
        assert len(buffer) == 7
        deltas = reader.read_new()  # plain consumer forces materialization
        assert [d.row for d in deltas] == [("r%d" % i,) for i in range(7)]
        assert buffer._pending == []

    def test_segment_reader_skips_the_deltas_round_trip(self):
        buffer = Buffer("b")
        reader = buffer.reader()
        buffer.append(
            [Delta(("p%d" % i,), 1, 1) for i in range(2)]
        )
        batch = self._batch(5, start=2)
        buffer.append_segment(batch)
        prefix, segments = reader.read_new_segments()
        assert [d.row for d in prefix] == [("p0",), ("p1",)]
        assert segments == [batch]  # the very same object, no conversion
        assert reader.remaining() == 0
        # a second read sees nothing new
        assert reader.read_new_segments() == ([], [])

    def test_plain_append_after_segments_keeps_order(self):
        buffer = Buffer("b")
        reader = buffer.reader()
        buffer.append_segment(self._batch(2))
        buffer.append([Delta(("tail",), 1, 1)])  # forces materialization
        rows = [d.row for d in reader.read_new()]
        assert rows == [("r0",), ("r1",), ("tail",)]

    def test_compact_drops_consumed_segments_without_materializing(self):
        buffer = Buffer("b")
        reader = buffer.reader()
        buffer.append_segment(self._batch(4))
        buffer.append_segment(self._batch(4, start=4))
        reader.read_new_segments()  # consume everything
        buffer.append_segment(self._batch(2, start=8))
        dropped = buffer.compact()
        assert dropped == 8
        assert buffer.deltas == []  # consumed segments never became deltas
        assert len(buffer) == 10  # logical length unchanged
        prefix, segments = reader.read_new_segments()
        assert prefix == [] and len(segments) == 1
        assert len(segments[0]) == 2

    def test_reset_clears_pending_segments(self):
        buffer = Buffer("b")
        reader = buffer.reader()
        buffer.append_segment(self._batch(3))
        reader.read_new_segments()
        buffer.reset()
        assert len(buffer) == 0 and reader.offset == 0
        buffer.append_segment(self._batch(1))
        assert len(reader.read_new()) == 1


class TestSegmentPassthroughEdgeCases:
    """The passthrough's corners: mixed appends, mid-segment compaction
    with lagging/pinned readers, and the no-materialization guarantee of
    a fully columnar pipeline."""

    def _batch(self, n, start=0, bits=1):
        from repro.engine.columns import ColumnBatch

        return ColumnBatch.from_deltas(
            [Delta(("r%d" % (start + i),), 1, bits) for i in range(n)], 1
        )

    def test_interleaved_plain_and_segment_appends(self):
        # plain -> segment -> plain -> segment; a segment-aware reader
        # consuming mid-stream must see every entry exactly once, in
        # order, across the alternating representations
        buffer = Buffer("b")
        reader = buffer.reader()
        buffer.append([Delta(("a%d" % i,), 1, 1) for i in range(2)])
        buffer.append_segment(self._batch(3))
        prefix, segments = reader.read_new_segments()
        assert [d.row for d in prefix] == [("a0",), ("a1",)]
        assert len(segments) == 1 and len(segments[0]) == 3
        buffer.append([Delta(("b0",), 1, 1)])  # materializes the tail
        buffer.append_segment(self._batch(2, start=3))
        prefix, segments = reader.read_new_segments()
        assert [d.row for d in prefix] == [("b0",)]
        assert len(segments) == 1 and len(segments[0]) == 2
        assert reader.remaining() == 0
        assert len(buffer) == 8

    def test_compact_keeps_partially_consumed_segment_whole(self):
        # two readers: one drained, one lagging mid-segment.  Compaction
        # may only drop up to the segment boundary below the laggard --
        # the partially consumed segment stays whole and columnar.
        buffer = Buffer("b")
        ahead = buffer.reader()
        lagging = buffer.reader()
        buffer.append([Delta(("p%d" % i,), 1, 1) for i in range(2)])
        lagging.read_new()  # laggard consumes only the plain prefix
        buffer.append_segment(self._batch(4))
        buffer.append_segment(self._batch(4, start=4))
        ahead.read_new_segments()  # drains everything
        # simulate a cursor inside the first segment (offset 3 of 10)
        lagging.offset = 3
        dropped = buffer.compact()
        # horizon clamps to the segment start (2), so only the plain
        # prefix goes; both segments survive unmaterialized
        assert dropped == 2
        assert buffer.base == 2 and buffer.deltas == []
        assert len(buffer._pending) == 2
        # the laggard's defensive mid-segment read still sees the right
        # rows (via the plain fallback), never a hole
        rows = [d.row for d in lagging.read_new()]
        assert rows == [("r%d" % i,) for i in range(1, 8)]

    def test_pinned_buffer_never_compacts_segments(self):
        buffer = Buffer("b")
        buffer.pinned = True
        reader = buffer.reader()
        buffer.append_segment(self._batch(5))
        reader.read_new_segments()
        assert buffer.compact() == 0
        assert len(buffer._pending) == 1  # replayable from offset 0
        replay = buffer.reader()
        assert len(replay.read_new()) == 5

    def test_columnar_pipeline_never_materializes_before_sink(
        self, fig11_setup, monkeypatch
    ):
        # the tentpole guarantee: sources emit ColumnBatch, operators
        # propagate batches, buffers park segments -- row deltas exist
        # only when a result sink asks.  Spy on the one conversion point
        # (ColumnBatch.to_deltas) across a full fig11 run.
        from repro.engine.columns import ColumnBatch

        plan, paces, _ = fig11_setup
        calls = []
        original = ColumnBatch.to_deltas

        def spy(batch):
            calls.append(len(batch))
            return original(batch)

        monkeypatch.setattr(ColumnBatch, "to_deltas", spy)
        clear_compiled_caches()
        with engine_mode(batched=True, columnar=True):
            PlanExecutor(plan, StreamConfig()).run(
                paces, collect_results=False
            )
            assert calls == []  # no sink read -> no deltas, ever
            result = PlanExecutor(plan, StreamConfig()).run(
                paces, collect_results=True
            )
        assert calls != []  # result collection is the only consumer
        assert result.query_results


def test_calibration_under_columnar_matches_batched():
    """The stats walker must know the columnar operator classes.

    Calibration runs a stats-mode batch execution and walks the compiled
    tree; under ``REPRO_ENGINE_COLUMNAR=1`` that tree is columnar, and
    the collected per-node statistics must equal the batched path's
    (work identity makes every count the same).
    """
    from repro.cost.cache import serialize_stats
    from repro.engine.calibrate import calibrate_plan

    from .util import (
        make_toy_catalog,
        toy_query_max,
        toy_query_region,
        toy_query_total,
    )

    catalog = make_toy_catalog()
    queries = [
        toy_query_total(catalog),
        toy_query_region(catalog),
        toy_query_max(catalog),
    ]
    batched_plan = shared_plan_for(catalog, queries)
    columnar_plan = shared_plan_for(catalog, queries)
    clear_compiled_caches()
    with engine_mode(batched=True):
        calibrate_plan(batched_plan, StreamConfig())
    clear_compiled_caches()
    with engine_mode(batched=True, columnar=True):
        calibrate_plan(columnar_plan, StreamConfig())
    assert serialize_stats(columnar_plan) == serialize_stats(batched_plan)


def test_fuzz_oracle_matrix_includes_columnar():
    """The fuzzer's oracle matrix must keep the columnar legs pinned."""
    import inspect

    from repro.fuzz import oracles

    source = inspect.getsource(oracles)
    assert "shared-columnar" in source
    assert "shared-columnar-vec" in source
