"""SQL-frontend versions of TPC-H queries must match the builder versions."""

import pytest

from repro.sqlparser import parse_query
from repro.workloads.tpch import build_workload, generate_catalog
from repro.workloads.tpch.schema import date_of

from .util import batch_reference


@pytest.fixture(scope="module")
def catalog():
    return generate_catalog(scale=0.2, seed=13)


Q1_SQL = """
    SELECT l_returnflag, l_linestatus,
           SUM(l_quantity) AS sum_qty,
           SUM(l_extendedprice) AS sum_base_price,
           SUM(l_extendedprice * (1 - l_discount)) AS sum_disc_price,
           AVG(l_quantity) AS avg_qty,
           COUNT(*) AS count_order
    FROM lineitem
    WHERE l_shipdate <= {cutoff}
    GROUP BY l_returnflag, l_linestatus
"""

Q6_SQL = """
    SELECT SUM(l_extendedprice * l_discount) AS revenue
    FROM lineitem
    WHERE l_shipdate >= {lo} AND l_shipdate < {hi}
      AND l_discount BETWEEN 0.05 AND 0.07
      AND l_quantity < 24
"""

Q4_SQL = """
    SELECT o_orderpriority, COUNT(*) AS order_count
    FROM orders JOIN lineitem ON o_orderkey = l_orderkey
    WHERE o_orderdate >= {lo} AND o_orderdate < {hi}
      AND l_commitdate < l_receiptdate
    GROUP BY o_orderpriority
"""


class TestSqlMatchesBuilder:
    def _compare(self, catalog, sql_text, builder_name):
        builder_query = build_workload(catalog, (builder_name,))[0]
        sql_query = parse_query(catalog, sql_text, 0, "sql_" + builder_name)
        builder_result = batch_reference(catalog, [builder_query])[0]
        sql_result = batch_reference(catalog, [sql_query])[0]
        assert sql_result == builder_result

    def test_q1(self, catalog):
        self._compare(
            catalog, Q1_SQL.format(cutoff=date_of(1998, 9, 2)), "Q1"
        )

    def test_q6(self, catalog):
        self._compare(
            catalog,
            Q6_SQL.format(lo=date_of(1994, 1, 1), hi=date_of(1995, 1, 1)),
            "Q6",
        )

    def test_q4(self, catalog):
        self._compare(
            catalog,
            Q4_SQL.format(lo=date_of(1993, 7, 1), hi=date_of(1993, 10, 1)),
            "Q4",
        )

    def test_sql_queries_share_with_builder_queries(self, catalog):
        """Structural signatures align, so the MQO can merge across frontends."""
        from repro.mqo.canonical import canonicalize_optimized

        builder_query = build_workload(catalog, ("Q6",))[0]
        sql_query = parse_query(
            catalog,
            Q6_SQL.format(lo=date_of(1994, 1, 1), hi=date_of(1995, 1, 1)),
            1, "sql_Q6",
        )
        a = canonicalize_optimized(builder_query.root).structure_key()
        b = canonicalize_optimized(sql_query.root).structure_key()
        assert a == b
