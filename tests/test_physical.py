"""Tests for the incremental physical operators.

Each operator is exercised directly through small hand-built plans; the
core invariant is *incremental/batch equivalence*: net results after any
sequence of delta batches must equal a one-shot computation.
"""

import pytest

from repro.errors import ExecutionError
from repro.mqo.nodes import OpNode, TableRef
from repro.physical.operators import (
    AggregateExec,
    Decorations,
    JoinExec,
    SourceExec,
    _MinMaxState,
)
from repro.physical.work import WorkMeter
from repro.relational.expressions import agg_avg, agg_count, agg_max, agg_min, agg_sum, col
from repro.relational.schema import Schema
from repro.relational.tuples import DELETE, Delta, INSERT


class FakeReader:
    """A scripted buffer reader: one list of deltas per advance call."""

    def __init__(self, batches):
        self.batches = list(batches)

    def read_new(self):
        if not self.batches:
            return []
        return self.batches.pop(0)


def table_node(schema, name="t", filters=None, projections=None, mask=0b1):
    return OpNode(
        "source",
        ref=TableRef(name, schema),
        filters=filters,
        projections=projections,
        query_mask=mask,
    )


def drain(exec_op, rounds):
    out = []
    for _ in range(rounds):
        out.extend(exec_op.advance())
    return out


def net(deltas):
    acc = {}
    for delta in deltas:
        key = (delta.row, delta.bits)
        acc[key] = acc.get(key, 0) + delta.sign
        if acc[key] == 0:
            del acc[key]
    return acc


SCHEMA_AB = Schema.of("a", "b")


class TestSourceExec:
    def test_masks_and_counts_work(self):
        node = table_node(SCHEMA_AB, mask=0b01)
        reader = FakeReader([[Delta((1, 2), INSERT, 0b10), Delta((3, 4), INSERT, 0b11)]])
        meter = WorkMeter()
        source = SourceExec(node, reader, 0b01, meter)
        out = source.advance()
        # the q1-only tuple is dropped; the shared tuple is restricted
        assert [d.row for d in out] == [(3, 4)]
        assert out[0].bits == 0b01
        assert meter.input_units == 2  # both records were scanned

    def test_marking_filter_clears_bits_not_rows(self):
        node = table_node(
            SCHEMA_AB,
            filters={1: col("a") > 10},
            mask=0b11,
        )
        reader = FakeReader([[Delta((5, 0), INSERT, 0b11)]])
        source = SourceExec(node, reader, 0b11, WorkMeter())
        out = source.advance()
        # q1's predicate fails -> bit cleared, but q0 still wants the row
        assert len(out) == 1
        assert out[0].bits == 0b01

    def test_filter_drops_row_when_no_query_wants_it(self):
        node = table_node(SCHEMA_AB, filters={0: col("a") > 10}, mask=0b01)
        reader = FakeReader([[Delta((5, 0), INSERT, 0b01)]])
        source = SourceExec(node, reader, 0b01, WorkMeter())
        assert source.advance() == []

    def test_projection_computes_union_columns(self):
        node = table_node(
            SCHEMA_AB,
            projections={0: (("total", col("a") + col("b")),)},
            mask=0b01,
        )
        reader = FakeReader([[Delta((2, 3), INSERT, 0b01)]])
        source = SourceExec(node, reader, 0b01, WorkMeter())
        out = source.advance()
        assert out[0].row == (5,)

    def test_consolidating_reads_cancel_churn(self):
        node = table_node(SCHEMA_AB, mask=0b01)
        churn = [
            Delta((1, 1), INSERT, 0b01),
            Delta((1, 1), DELETE, 0b01),
            Delta((2, 2), INSERT, 0b01),
        ]
        meter = WorkMeter()
        source = SourceExec(
            node, FakeReader([churn]), 0b01, meter, consolidate_reads=True
        )
        out = source.advance()
        assert [d.row for d in out] == [(2, 2)]
        assert meter.input_units == 1  # compacted before scanning


def join_node(left, right, left_keys, right_keys, mask=0b1):
    return OpNode(
        "join",
        children=[left, right],
        left_keys=left_keys,
        right_keys=right_keys,
        query_mask=mask,
    )


class _Feed:
    """Adapter: a scripted child operator."""

    def __init__(self, batches):
        self.batches = list(batches)

    def advance(self):
        if not self.batches:
            return []
        return self.batches.pop(0)


class TestJoinExec:
    def _make(self, left_batches, right_batches, mask=0b1):
        left_schema = Schema.of("k", "x")
        right_schema = Schema.of("k2", "y")
        node = join_node(
            table_node(left_schema, "l", mask=mask),
            table_node(right_schema, "r", mask=mask),
            ["k"], ["k2"], mask,
        )
        meter = WorkMeter()
        join = JoinExec(node, _Feed(left_batches), _Feed(right_batches), meter)
        return join, meter

    def test_simple_match(self):
        join, _ = self._make(
            [[Delta((1, "a"), INSERT, 1)]],
            [[Delta((1, "b"), INSERT, 1)]],
        )
        out = join.advance()
        assert net(out) == {((1, "a", 1, "b"), 1): 1}

    def test_matches_across_executions(self):
        join, _ = self._make(
            [[Delta((1, "a"), INSERT, 1)], []],
            [[], [Delta((1, "b"), INSERT, 1)]],
        )
        first = join.advance()
        second = join.advance()
        assert first == []
        assert net(second) == {((1, "a", 1, "b"), 1): 1}

    def test_delete_retracts_prior_matches(self):
        join, _ = self._make(
            [[Delta((1, "a"), INSERT, 1)], [Delta((1, "a"), DELETE, 1)]],
            [[Delta((1, "b"), INSERT, 1)], []],
        )
        join.advance()
        out = join.advance()
        assert net(out) == {((1, "a", 1, "b"), 1): -1}
        assert join.state_size() == 1  # only the right row remains

    def test_bits_anded_on_output(self):
        join, _ = self._make(
            [[Delta((1, "a"), INSERT, 0b01)]],
            [[Delta((1, "b"), INSERT, 0b11)]],
            mask=0b11,
        )
        out = join.advance()
        assert out[0].bits == 0b01

    def test_disjoint_bits_produce_no_output(self):
        join, _ = self._make(
            [[Delta((1, "a"), INSERT, 0b01)]],
            [[Delta((1, "b"), INSERT, 0b10)]],
            mask=0b11,
        )
        assert join.advance() == []

    def test_same_execution_delta_join(self):
        # both sides arrive in the same execution: output exactly once
        join, _ = self._make(
            [[Delta((1, "a"), INSERT, 1)]],
            [[Delta((1, "b"), INSERT, 1)]],
        )
        out = join.advance()
        assert len(out) == 1

    def test_duplicate_rows_multiply(self):
        join, _ = self._make(
            [[Delta((1, "a"), INSERT, 1), Delta((1, "a"), INSERT, 1)]],
            [[Delta((1, "b"), INSERT, 1)]],
        )
        out = join.advance()
        assert net(out) == {((1, "a", 1, "b"), 1): 2}

    def test_state_charge_grows_with_entries(self):
        left_schema = Schema.of("k", "x")
        right_schema = Schema.of("k2", "y")
        node = join_node(
            table_node(left_schema, "l"), table_node(right_schema, "r"),
            ["k"], ["k2"],
        )
        meter = WorkMeter()
        join = JoinExec(
            node,
            _Feed([[Delta((i, "a"), INSERT, 1) for i in range(10)]]),
            _Feed([[]]),
            meter,
            state_factor=0.5,
        )
        join.advance()
        assert meter.state_units == pytest.approx(5.0)
        assert join.entry_count == 10


def agg_node(child, group_by, aggs, mask=0b1):
    return OpNode(
        "aggregate", children=[child], group_by=group_by, aggs=aggs,
        query_mask=mask,
    )


class TestAggregateExec:
    def _make(self, batches, group_by, aggs, mask=0b1):
        child_schema = Schema.of("g", "v")
        node = agg_node(table_node(child_schema), group_by, aggs, mask)
        meter = WorkMeter()
        agg = AggregateExec(node, _Feed(batches), mask, meter)
        return agg, meter

    def test_sum_single_batch(self):
        agg, _ = self._make(
            [[Delta(("a", 2.0), INSERT, 1), Delta(("a", 3.0), INSERT, 1)]],
            ["g"], [agg_sum(col("v"), "s")],
        )
        out = agg.advance()
        assert net(out) == {(("a", 5.0), 1): 1}

    def test_incremental_update_retracts_and_reinserts(self):
        agg, _ = self._make(
            [[Delta(("a", 2.0), INSERT, 1)], [Delta(("a", 3.0), INSERT, 1)]],
            ["g"], [agg_sum(col("v"), "s")],
        )
        first = agg.advance()
        second = agg.advance()
        assert net(first) == {(("a", 2.0), 1): 1}
        assert net(first + second) == {(("a", 5.0), 1): 1}
        # the second execution retracted the old row
        assert any(d.sign == DELETE and d.row == ("a", 2.0) for d in second)

    def test_group_deletion_emits_retraction_only(self):
        agg, _ = self._make(
            [[Delta(("a", 2.0), INSERT, 1)], [Delta(("a", 2.0), DELETE, 1)]],
            ["g"], [agg_sum(col("v"), "s")],
        )
        agg.advance()
        out = agg.advance()
        assert net(out) == {(("a", 2.0), 1): -1}
        assert agg.group_count() == 0

    def test_count_and_avg(self):
        agg, _ = self._make(
            [[Delta(("a", 2.0), INSERT, 1), Delta(("a", 4.0), INSERT, 1)]],
            ["g"], [agg_count("n"), agg_avg(col("v"), "m")],
        )
        out = agg.advance()
        assert net(out) == {(("a", 2, 3.0), 1): 1}

    def test_global_aggregate_empty_group_key(self):
        agg, _ = self._make(
            [[Delta(("a", 2.0), INSERT, 1), Delta(("b", 4.0), INSERT, 1)]],
            [], [agg_sum(col("v"), "s")],
        )
        out = agg.advance()
        assert net(out) == {((6.0,), 1): 1}

    def test_per_query_state_with_marked_inputs(self):
        # q0 sees both rows, q1 only the second: different sums per query
        agg, _ = self._make(
            [[Delta(("a", 2.0), INSERT, 0b01), Delta(("a", 4.0), INSERT, 0b11)]],
            ["g"], [agg_sum(col("v"), "s")], mask=0b11,
        )
        out = agg.advance()
        assert net(out) == {(("a", 6.0), 0b01): 1, (("a", 4.0), 0b10): 1}

    def test_identical_per_query_rows_coalesce(self):
        agg, _ = self._make(
            [[Delta(("a", 2.0), INSERT, 0b11)]],
            ["g"], [agg_sum(col("v"), "s")], mask=0b11,
        )
        out = agg.advance()
        assert len(out) == 1
        assert out[0].bits == 0b11

    def test_min_max_track_extrema(self):
        agg, _ = self._make(
            [[Delta(("a", 2.0), INSERT, 1), Delta(("a", 9.0), INSERT, 1)]],
            ["g"], [agg_min(col("v"), "lo"), agg_max(col("v"), "hi")],
        )
        out = agg.advance()
        assert net(out) == {(("a", 2.0, 9.0), 1): 1}

    def test_max_delete_triggers_rescan_charge(self):
        agg, meter = self._make(
            [
                [Delta(("a", float(v)), INSERT, 1) for v in range(1, 6)],
                [Delta(("a", 5.0), DELETE, 1)],
            ],
            ["g"], [agg_max(col("v"), "hi")],
        )
        agg.advance()
        assert meter.rescan_units == 0
        out = agg.advance()
        assert meter.rescan_units == 4  # rescans the four remaining values
        assert net(out) == {(("a", 5.0), 1): -1, (("a", 4.0), 1): 1}

    def test_non_extremum_delete_does_not_rescan(self):
        agg, meter = self._make(
            [
                [Delta(("a", float(v)), INSERT, 1) for v in range(1, 6)],
                [Delta(("a", 2.0), DELETE, 1)],
            ],
            ["g"], [agg_max(col("v"), "hi")],
        )
        agg.advance()
        agg.advance()
        assert meter.rescan_units == 0

    def test_state_counter_tracks_group_query_pairs(self):
        agg, meter = self._make(
            [[Delta(("a", 1.0), INSERT, 0b11), Delta(("b", 1.0), INSERT, 0b01)]],
            ["g"], [agg_sum(col("v"), "s")], mask=0b11,
        )
        agg.state_factor = 1.0
        agg.advance()
        assert agg.state_count == 3  # (a,q0), (a,q1), (b,q0)


class TestMinMaxState:
    def test_insert_tracks_extremum(self):
        state = _MinMaxState(is_max=True)
        meter = WorkMeter()
        for value in (3, 7, 5):
            state.update(value, INSERT, meter, "m")
        assert state.current() == 7

    def test_min_variant(self):
        state = _MinMaxState(is_max=False)
        meter = WorkMeter()
        for value in (3, 7, 5):
            state.update(value, INSERT, meter, "m")
        assert state.current() == 3

    def test_delete_all_returns_none(self):
        state = _MinMaxState(is_max=True)
        meter = WorkMeter()
        state.update(4, INSERT, meter, "m")
        state.update(4, DELETE, meter, "m")
        assert state.current() is None

    def test_duplicate_values_survive_single_delete(self):
        state = _MinMaxState(is_max=True)
        meter = WorkMeter()
        state.update(4, INSERT, meter, "m")
        state.update(4, INSERT, meter, "m")
        state.update(4, DELETE, meter, "m")
        assert state.current() == 4

    def test_delete_of_absent_value_raises(self):
        # regression: this used to drive the multiset count negative and
        # silently pop the entry, corrupting every later rescan
        state = _MinMaxState(is_max=True)
        meter = WorkMeter()
        state.update(4, INSERT, meter, "m")
        with pytest.raises(ExecutionError, match="not present"):
            state.update(7, DELETE, meter, "m")
        assert state.values == {4: 1}
        assert state.current() == 4

    def test_double_delete_raises_instead_of_going_negative(self):
        state = _MinMaxState(is_max=True)
        meter = WorkMeter()
        state.update(4, INSERT, meter, "m")
        state.update(4, DELETE, meter, "m")
        with pytest.raises(ExecutionError, match="not present"):
            state.update(4, DELETE, meter, "m")

    def test_rescan_charge_equals_multiset_size_after_extremum_delete(self):
        state = _MinMaxState(is_max=True)
        meter = WorkMeter()
        for value in (1, 2, 3, 4, 5):
            state.update(value, INSERT, meter, "m")
        state.update(5, DELETE, meter, "m")
        assert meter.rescan_units == 4
        assert state.current() == 4
        state.update(4, DELETE, meter, "m")
        assert meter.rescan_units == 4 + 3
        assert state.current() == 3

    def test_duplicate_extremum_only_rescans_on_last_copy(self):
        state = _MinMaxState(is_max=True)
        meter = WorkMeter()
        for value in (5, 5, 3):
            state.update(value, INSERT, meter, "m")
        state.update(5, DELETE, meter, "m")
        assert meter.rescan_units == 0  # a copy of the extremum remains
        assert state.current() == 5
        state.update(5, DELETE, meter, "m")
        assert meter.rescan_units == 1  # rescans the surviving {3}
        assert state.current() == 3

    def test_min_variant_rescan_charge(self):
        state = _MinMaxState(is_max=False)
        meter = WorkMeter()
        for value in (2, 2, 7, 9):
            state.update(value, INSERT, meter, "m")
        state.update(2, DELETE, meter, "m")
        assert meter.rescan_units == 0
        state.update(2, DELETE, meter, "m")
        assert meter.rescan_units == 2
        assert state.current() == 7
