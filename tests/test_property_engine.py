"""Generative property tests: random workloads, full-pipeline equivalence.

Hypothesis generates small star-schema datasets and random query batches
(filters, group-bys, optional aggregates over joins); for every generated
case the shared incremental execution at random paces must produce the
same net results as separate one-batch execution.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.engine.compare import assert_results_close
from repro.engine.executor import PlanExecutor
from repro.logical.builder import PlanBuilder
from repro.mqo.merge import MQOOptimizer, build_unshared_plan
from repro.relational.expressions import agg_avg, agg_count, agg_max, agg_min, agg_sum, col
from repro.relational.schema import Schema, INT, FLOAT, STR
from repro.relational.table import Catalog


def build_catalog(rng, n_dim, n_fact):
    catalog = Catalog()
    dim = catalog.create(
        "dim", Schema.of(("d_id", INT), ("d_group", STR), ("d_weight", FLOAT))
    )
    for key in range(n_dim):
        dim.append((key, "g%d" % rng.randrange(4), float(rng.randint(1, 20))))
    fact = catalog.create(
        "fact", Schema.of(("f_dim", INT), ("f_value", FLOAT), ("f_tag", INT))
    )
    for _ in range(n_fact):
        fact.append((rng.randrange(n_dim), float(rng.randint(1, 50)),
                     rng.randrange(10)))
    return catalog


AGG_FACTORIES = [
    lambda: agg_sum(col("f_value"), "s"),
    lambda: agg_count("n"),
    lambda: agg_avg(col("f_value"), "m"),
    lambda: agg_min(col("f_value"), "lo"),
    lambda: agg_max(col("f_value"), "hi"),
]


def build_random_query(catalog, rng, query_id):
    fact = PlanBuilder.scan(catalog, "fact")
    if rng.random() < 0.7:
        fact = fact.where(col("f_tag") < rng.randint(1, 10))
    plan = fact.join(PlanBuilder.scan(catalog, "dim"), "f_dim", "d_id")
    if rng.random() < 0.5:
        plan = plan.where(col("d_weight") > rng.randint(1, 15))
    group_by = rng.choice([["d_group"], ["f_dim"], []])
    aggs = [factory() for factory in rng.sample(AGG_FACTORIES, rng.randint(1, 3))]
    plan = plan.aggregate(group_by, aggs)
    return plan.as_query(query_id, "rq%d" % query_id)


def random_paces(plan, rng, ceiling):
    paces = {}
    for subplan in plan.topological_order():
        upper = min(
            (paces[c.sid] for c in subplan.child_subplans()), default=ceiling
        )
        paces[subplan.sid] = rng.randint(1, max(1, upper))
    return paces


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10**6),
    n_queries=st.integers(min_value=1, max_value=4),
    ceiling=st.integers(min_value=1, max_value=11),
)
def test_shared_incremental_matches_batch(seed, n_queries, ceiling):
    rng = random.Random(seed)
    catalog = build_catalog(rng, n_dim=rng.randint(3, 15), n_fact=rng.randint(20, 150))
    queries = [build_random_query(catalog, rng, qid) for qid in range(n_queries)]

    reference_plan = build_unshared_plan(catalog, queries)
    reference = PlanExecutor(reference_plan).run(
        {s.sid: 1 for s in reference_plan.subplans}
    )

    shared = MQOOptimizer(catalog).build_shared_plan(queries)
    run = PlanExecutor(shared).run(random_paces(shared, rng, ceiling))
    for query in queries:
        assert_results_close(
            run.query_results[query.query_id],
            reference.query_results[query.query_id],
            context="seed=%d %s" % (seed, query.name),
        )


@settings(max_examples=12, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10**6))
def test_work_accounting_consistency(seed):
    """Total work equals the sum of execution records; finals are recorded."""
    rng = random.Random(seed)
    catalog = build_catalog(rng, n_dim=8, n_fact=80)
    queries = [build_random_query(catalog, rng, qid) for qid in range(2)]
    plan = MQOOptimizer(catalog).build_shared_plan(queries)
    paces = random_paces(plan, rng, 7)
    run = PlanExecutor(plan).run(paces, collect_results=False)
    assert abs(run.total_work - sum(r.work for r in run.records)) < 1e-6
    assert set(run.subplan_final_work) == {s.sid for s in plan.subplans}
    assert sum(paces.values()) == len(run.records)


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10**6))
def test_churned_stream_equivalence(seed):
    """Random update churn on the fact stream preserves equivalence."""
    rng = random.Random(seed)
    catalog = build_catalog(rng, n_dim=6, n_fact=60)
    fact = catalog.get("fact")
    updates = []
    for row in rng.sample(fact.rows, rng.randint(1, 8)):
        new_row = (row[0], float(rng.randint(1, 50)), row[2])
        updates.append((row, new_row))
    fact.apply_updates(updates, rng)

    queries = [build_random_query(catalog, rng, 0)]
    reference_plan = build_unshared_plan(catalog, queries)
    reference = PlanExecutor(reference_plan).run({0: 1})
    pace = rng.randint(2, 9)
    run = PlanExecutor(reference_plan).run({0: pace})
    assert_results_close(
        run.query_results[0], reference.query_results[0],
        context="seed=%d pace=%d" % (seed, pace),
    )
