"""Tests for the Graphviz plan export and CSV experiment export."""

from repro.harness.experiments import ExperimentResult
from repro.mqo.dot import plan_to_dot
from repro.mqo.merge import MQOOptimizer

from .util import toy_query_region, toy_query_total


class TestPlanToDot:
    def test_contains_all_subplans_and_queries(self, toy_catalog):
        queries = [toy_query_total(toy_catalog, 0), toy_query_region(toy_catalog, 1)]
        plan = MQOOptimizer(toy_catalog).build_shared_plan(queries)
        dot = plan_to_dot(plan, title="demo")
        assert dot.startswith("digraph")
        assert dot.count("subgraph") == len(plan.subplans)
        for qid in plan.query_roots:
            assert "q%d output" % qid in dot
        assert '"demo"' in dot

    def test_buffer_edges_dashed(self, toy_catalog):
        queries = [toy_query_total(toy_catalog, 0), toy_query_region(toy_catalog, 1)]
        plan = MQOOptimizer(toy_catalog).build_shared_plan(queries)
        dot = plan_to_dot(plan)
        assert "style=dashed" in dot

    def test_marks_annotated(self, toy_catalog):
        queries = [toy_query_total(toy_catalog, 0), toy_query_region(toy_catalog, 1)]
        plan = MQOOptimizer(toy_catalog).build_shared_plan(queries)
        dot = plan_to_dot(plan)
        assert "σ*" in dot  # q1's region filter is a mark somewhere

    def test_balanced_braces(self, toy_catalog):
        queries = [toy_query_total(toy_catalog, 0)]
        plan = MQOOptimizer(toy_catalog).build_shared_plan(queries)
        dot = plan_to_dot(plan)
        assert dot.count("{") == dot.count("}")


class TestCsvExport:
    def test_tables_round_trip(self):
        result = ExperimentResult("demo")
        result.add_table(("a", "b"), [[1, 2.5], ["x", "y"]], title="t")
        csv_text = result.to_csv()
        lines = [line for line in csv_text.splitlines() if line.strip()]
        assert lines[0] == "a,b"
        assert lines[1] == "1,2.5"
        assert lines[2] == "x,y"

    def test_sections_still_render(self):
        result = ExperimentResult("demo")
        result.add_table(("h",), [["v"]], title="title")
        assert "title" in result.text()
        assert "h" in result.text()

    def test_no_tables_empty_csv(self):
        result = ExperimentResult("demo")
        assert result.to_csv() == ""
