"""Tests for incrementability, the greedy pace searches and pace helpers."""

import pytest

from repro.core.greedy import PaceSearch, decrease_paces
from repro.core.incrementability import (
    benefit,
    bounded_final_work,
    constraints_met,
    incrementability,
    unmet_queries,
)
from repro.core.pace import (
    batch_configuration,
    can_decrease,
    can_increase,
    is_eagerer_or_equal,
    uniform_configuration,
    validate_parent_child,
    with_pace,
)
from repro.cost.memo import CostEvaluation, PlanCostModel
from repro.cost.model import CostConfig
from repro.engine.calibrate import calibrate_plan
from repro.engine.stream import StreamConfig
from repro.errors import OptimizationError
from repro.mqo.merge import MQOOptimizer, build_unshared_plan

from .util import make_toy_catalog, toy_query_max, toy_query_region, toy_query_total


def make_eval(total, finals):
    evaluation = CostEvaluation()
    evaluation.total_work = total
    evaluation.query_final_work = dict(finals)
    return evaluation


class TestIncrementabilityMath:
    def test_bounded_final_work(self):
        assert bounded_final_work(5.0, 10.0) == 10.0
        assert bounded_final_work(15.0, 10.0) == 15.0

    def test_benefit_counts_only_missed_reduction(self):
        lazy = make_eval(100, {0: 50.0})
        eager = make_eval(120, {0: 30.0})
        # constraint 40: missed goes 10 -> 0, so benefit is 10 (not 20)
        assert benefit(eager, lazy, {0: 40.0}) == pytest.approx(10.0)

    def test_benefit_zero_when_already_met(self):
        lazy = make_eval(100, {0: 30.0})
        eager = make_eval(120, {0: 10.0})
        assert benefit(eager, lazy, {0: 40.0}) == 0.0

    def test_benefit_sums_over_queries(self):
        lazy = make_eval(100, {0: 50.0, 1: 80.0})
        eager = make_eval(120, {0: 45.0, 1: 60.0})
        constraints = {0: 10.0, 1: 10.0}
        assert benefit(eager, lazy, constraints) == pytest.approx(5.0 + 20.0)

    def test_incrementability_ratio(self):
        lazy = make_eval(100, {0: 50.0})
        eager = make_eval(120, {0: 30.0})
        assert incrementability(eager, lazy, {0: 0.0}) == pytest.approx(1.0)

    def test_free_improvement_is_infinite(self):
        lazy = make_eval(100, {0: 50.0})
        eager = make_eval(100, {0: 30.0})
        assert incrementability(eager, lazy, {0: 0.0}) == float("inf")

    def test_no_benefit_no_extra_work_is_zero(self):
        lazy = make_eval(100, {0: 50.0})
        eager = make_eval(90, {0: 50.0})
        assert incrementability(eager, lazy, {0: 0.0}) == 0.0

    def test_unmet_and_met(self):
        evaluation = make_eval(0, {0: 5.0, 1: 20.0})
        constraints = {0: 10.0, 1: 10.0}
        assert unmet_queries(evaluation, constraints) == [1]
        assert not constraints_met(evaluation, constraints)
        assert constraints_met(evaluation, {0: 10.0, 1: 30.0})


@pytest.fixture(scope="module")
def search_setup():
    catalog = make_toy_catalog()
    queries = [
        toy_query_total(catalog, 0),
        toy_query_region(catalog, 1),
        toy_query_max(catalog, 2),
    ]
    plan = MQOOptimizer(catalog).build_shared_plan(queries)
    config = StreamConfig()
    calibrate_plan(plan, config)
    model = PlanCostModel(plan, CostConfig(state_factor=config.state_factor))
    return catalog, queries, plan, model


class TestPaceHelpers:
    def test_batch_and_uniform(self, search_setup):
        _, _, plan, _ = search_setup
        assert set(batch_configuration(plan).values()) == {1}
        assert set(uniform_configuration(plan, 7).values()) == {7}

    def test_with_pace_copies(self, search_setup):
        _, _, plan, _ = search_setup
        base = batch_configuration(plan)
        sid = plan.subplans[0].sid
        updated = with_pace(base, sid, 5)
        assert updated[sid] == 5 and base[sid] == 1

    def test_is_eagerer_or_equal(self, search_setup):
        _, _, plan, _ = search_setup
        lazy = batch_configuration(plan)
        eager = uniform_configuration(plan, 3)
        assert is_eagerer_or_equal(eager, lazy)
        assert not is_eagerer_or_equal(lazy, eager)

    def test_validate_parent_child(self, search_setup):
        _, _, plan, _ = search_setup
        validate_parent_child(plan, batch_configuration(plan))
        shared = plan.shared_subplans()[0]
        parent = plan.parents_of(shared)[0]
        bad = batch_configuration(plan)
        bad[parent.sid] = 5  # parent eagerer than child
        with pytest.raises(OptimizationError):
            validate_parent_child(plan, bad)

    def test_can_increase_respects_children(self, search_setup):
        _, _, plan, _ = search_setup
        shared = plan.shared_subplans()[0]
        parent = plan.parents_of(shared)[0]
        paces = batch_configuration(plan)
        assert not can_increase(plan, paces, parent.sid, max_pace=10)
        paces[shared.sid] = 2
        assert can_increase(plan, paces, parent.sid, max_pace=10)
        assert not can_increase(plan, paces, parent.sid, max_pace=1)

    def test_can_decrease_respects_parents(self, search_setup):
        _, _, plan, _ = search_setup
        shared = plan.shared_subplans()[0]
        paces = uniform_configuration(plan, 3)
        assert not can_decrease(plan, paces, shared.sid)
        for parent in plan.parents_of(shared):
            paces[parent.sid] = 1
        assert can_decrease(plan, paces, shared.sid)
        paces[shared.sid] = 1
        assert not can_decrease(plan, paces, shared.sid)


class TestPaceHelperErrors:
    """Mismatched subplan-id sets raise OptimizationError, not KeyError.

    Configurations for pre- and post-decomposition plans cover different
    sids; the helpers must reject the comparison descriptively instead of
    crashing with a bare KeyError (the pre-fix behavior).
    """

    def test_is_eagerer_or_equal_different_sid_sets(self, search_setup):
        _, _, plan, _ = search_setup
        eager = uniform_configuration(plan, 3)
        lazy = batch_configuration(plan)
        lazy[max(lazy) + 1] = 1  # a sid the eager config does not cover
        with pytest.raises(OptimizationError, match="different subplan-id"):
            is_eagerer_or_equal(eager, lazy)
        with pytest.raises(OptimizationError, match="different subplan-id"):
            is_eagerer_or_equal(lazy, eager)

    def test_is_eagerer_or_equal_across_decomposition(self, search_setup):
        catalog, queries, plan, _ = search_setup
        from repro.core.regenerate import apply_split

        shared = [
            s for s in plan.shared_subplans()
            if len(s.query_ids()) >= 2
        ][0]
        qids = shared.query_ids()
        parts = [tuple(qids[:1]), tuple(qids[1:])]
        new_plan, initial = apply_split(
            plan, uniform_configuration(plan, 2), shared.sid, parts
        )
        assert {s.sid for s in new_plan.subplans} != {
            s.sid for s in plan.subplans
        }
        with pytest.raises(OptimizationError):
            is_eagerer_or_equal(initial, uniform_configuration(plan, 2))

    def test_with_pace_unknown_sid(self, search_setup):
        _, _, plan, _ = search_setup
        base = batch_configuration(plan)
        with pytest.raises(OptimizationError, match="unknown subplan"):
            with_pace(base, max(base) + 10, 3)

    def test_can_increase_unknown_sid(self, search_setup):
        _, _, plan, _ = search_setup
        paces = batch_configuration(plan)
        missing = max(paces) + 10
        with pytest.raises(OptimizationError, match="no subplan"):
            can_increase(plan, paces, missing, max_pace=10)
        incomplete = dict(paces)
        del incomplete[plan.subplans[0].sid]
        with pytest.raises(OptimizationError, match="no pace for subplan"):
            can_increase(plan, incomplete, plan.subplans[0].sid, max_pace=10)

    def test_can_decrease_unknown_sid(self, search_setup):
        _, _, plan, _ = search_setup
        paces = uniform_configuration(plan, 3)
        missing = max(paces) + 10
        with pytest.raises(OptimizationError, match="no pace for subplan"):
            can_decrease(plan, paces, missing)
        paces[missing] = 3  # covered by the config but absent from the plan
        with pytest.raises(OptimizationError, match="no subplan"):
            can_decrease(plan, paces, missing)

    def test_validate_parent_child_missing_sid(self, search_setup):
        _, _, plan, _ = search_setup
        paces = batch_configuration(plan)
        del paces[plan.subplans[0].sid]
        with pytest.raises(OptimizationError, match="no pace for subplan"):
            validate_parent_child(plan, paces)


class TestAscendingSearch:
    def test_loose_constraints_stay_near_batch(self, search_setup):
        _, _, plan, model = search_setup
        constraints = model.absolute_constraints({0: 1.0, 1: 1.0, 2: 1.0})
        result = PaceSearch(model, constraints, max_pace=16).find()
        assert result.met_constraints
        # a shared plan's final work can slightly exceed the solo batch
        # (marks keep union tuples), so at most a small pace bump is needed
        assert max(result.pace_config.values()) <= 2
        assert result.iterations <= 3

    def test_tight_constraints_raise_paces(self, search_setup):
        _, _, plan, model = search_setup
        constraints = model.absolute_constraints({0: 0.2, 1: 0.2, 2: 1.0})
        result = PaceSearch(model, constraints, max_pace=32).find()
        assert result.met_constraints
        assert max(result.pace_config.values()) > 1
        validate_parent_child(plan, result.pace_config)

    def test_only_constrained_queries_get_eager(self, search_setup):
        _, _, plan, model = search_setup
        constraints = model.absolute_constraints({0: 1.0, 1: 0.2, 2: 1.0})
        result = PaceSearch(model, constraints, max_pace=32).find()
        # q2's standalone pipeline must remain at batch
        for subplan in plan.subplans_of_query(2):
            if subplan.query_mask == 0b100:
                assert result.pace_config[subplan.sid] == 1

    def test_unmeetable_constraints_hit_max_pace(self, search_setup):
        _, _, plan, model = search_setup
        constraints = {0: 1.0, 1: 1.0, 2: 1.0}  # one work unit: impossible
        result = PaceSearch(model, constraints, max_pace=4).find()
        assert not result.met_constraints
        assert all(
            result.pace_config[s.sid] == 4 for s in plan.subplans
        )

    def test_groups_move_together(self, search_setup):
        _, _, plan, model = search_setup
        groups = [[s.sid for s in plan.subplans]]
        constraints = model.absolute_constraints({0: 0.3, 1: 0.3, 2: 0.3})
        result = PaceSearch(model, constraints, max_pace=32, groups=groups).find()
        assert len(set(result.pace_config.values())) == 1

    def test_groups_must_partition(self, search_setup):
        _, _, plan, model = search_setup
        with pytest.raises(OptimizationError, match="partition"):
            PaceSearch(model, {}, 8, groups=[[plan.subplans[0].sid]])


class TestDescendingSearch:
    def test_decrease_reduces_total_keeping_constraints(self, search_setup):
        _, _, plan, model = search_setup
        constraints = model.absolute_constraints({0: 0.5, 1: 0.5, 2: 1.0})
        eager = uniform_configuration(plan, 16)
        paces, evaluation = decrease_paces(model, constraints, eager)
        eager_eval = model.evaluate(eager)
        assert evaluation.total_work < eager_eval.total_work
        assert constraints_met(evaluation, constraints)
        validate_parent_child(plan, paces)

    def test_decrease_is_noop_at_batch(self, search_setup):
        _, _, plan, model = search_setup
        constraints = model.absolute_constraints({0: 1.0, 1: 1.0, 2: 1.0})
        batch = batch_configuration(plan)
        paces, _ = decrease_paces(model, constraints, batch)
        assert paces == batch

    def test_decrease_never_violates_unmet_queries_further(self, search_setup):
        _, _, plan, model = search_setup
        # impossible constraints: decrease must not worsen any miss
        constraints = {0: 1.0, 1: 1.0, 2: 1.0}
        eager = uniform_configuration(plan, 8)
        eager_eval = model.evaluate(eager)
        paces, evaluation = decrease_paces(model, constraints, eager)
        for qid in constraints:
            assert evaluation.query_final_work[qid] <= max(
                constraints[qid], eager_eval.query_final_work[qid]
            ) + 1e-6
