"""Coverage for smaller behaviours: MQO gates, CLI, reports, edge cases."""

import pytest

from repro.harness.__main__ import main as harness_main
from repro.mqo.merge import MQOOptimizer
from repro.relational.expressions import agg_count, agg_sum, col
from repro.logical.builder import PlanBuilder
from repro.sqlparser.lexer import tokenize

from .util import make_toy_catalog, toy_query_region, toy_query_total


class TestMaterializationGate:
    """The min_shared_operators gate approximates the [40] cost check."""

    def _pair(self, catalog):
        base = (
            PlanBuilder.scan(catalog, "events")
            .join(PlanBuilder.scan(catalog, "items"), "ev_item", "item_id")
        )
        a = base.aggregate(["item_cat"], [agg_sum(col("qty"), "s")]).as_query(0, "a")
        b = base.aggregate(["item_cat"], [agg_count("n")]).as_query(1, "b")
        return [a, b]

    def test_default_gate_shares_the_join(self, toy_catalog):
        queries = self._pair(toy_catalog)
        plan = MQOOptimizer(toy_catalog, min_shared_operators=1).build_shared_plan(queries)
        assert plan.shared_subplans()

    def test_high_gate_prevents_small_shares(self, toy_catalog):
        queries = self._pair(toy_catalog)
        plan = MQOOptimizer(toy_catalog, min_shared_operators=10).build_shared_plan(queries)
        assert plan.shared_subplans() == []
        # both queries still answer correctly on their private plans
        from .util import batch_reference, assert_plan_correct

        reference = batch_reference(toy_catalog, queries)
        assert_plan_correct(plan, queries, reference)


class TestHarnessCli:
    def test_fig10_runs_and_prints(self, capsys):
        exit_code = harness_main(["fig10", "--scale", "0.1"])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "Figure 10" in captured.out
        assert "finished in" in captured.out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            harness_main(["fig99"])


class TestLexerEdgeCases:
    def test_number_then_qualified_column(self):
        tokens = tokenize("1.5 t.c 2")
        kinds = [t.kind for t in tokens[:-1]]
        assert kinds == ["number", "ident", "op", "ident", "number"]

    def test_empty_input_is_just_eof(self):
        tokens = tokenize("   \n  ")
        assert [t.kind for t in tokens] == ["eof"]

    def test_hash_allowed_inside_identifiers(self):
        tokens = tokenize("Brand#23")
        assert tokens[0].value == "Brand#23"


class TestPlanDiagnostics:
    def test_consumer_count_includes_query_outputs(self, toy_catalog):
        queries = [toy_query_total(toy_catalog, 0), toy_query_region(toy_catalog, 1)]
        plan = MQOOptimizer(toy_catalog).build_shared_plan(queries)
        for qid, root in plan.query_roots.items():
            assert plan.consumer_count(root) >= 1

    def test_base_tables_listed(self, toy_catalog):
        queries = [toy_query_total(toy_catalog, 0)]
        plan = MQOOptimizer(toy_catalog).build_shared_plan(queries)
        tables = set()
        for subplan in plan.subplans:
            tables.update(subplan.base_tables())
        assert tables == {"events", "items", "categories"}

    def test_connected_components_singletons_for_disjoint(self, toy_catalog):
        from .util import toy_query_max

        queries = [toy_query_total(toy_catalog, 0), toy_query_max(toy_catalog, 1)]
        plan = MQOOptimizer(toy_catalog).build_shared_plan(queries)
        assert sorted(map(tuple, plan.connected_components())) == [(0,), (1,)]


class TestExamplesImportable:
    @pytest.mark.parametrize("name", [
        "quickstart", "scheduled_dashboards", "sql_frontend", "pace_tradeoff",
    ])
    def test_example_module_compiles(self, name):
        import os
        import py_compile

        path = os.path.join(
            os.path.dirname(__file__), os.pardir, "examples", "%s.py" % name
        )
        py_compile.compile(path, doraise=True)
