"""Tests that partial decomposition is actually adopted when it pays.

Builds the Q15-shaped scenario of section 4.3: two queries share a
pipeline whose cheap top (a MAX aggregate) wants to be lazy for one query
and eager for the other, while the expensive bottom (the grouped SUM)
should stay shared.  A full unshare duplicates the bottom; the partial
cut keeps it shared and splits only the top.
"""

import random

import pytest

from repro.core.decompose import decompose_full_plan
from repro.core.greedy import PaceSearch
from repro.cost.memo import PlanCostModel
from repro.cost.model import CostConfig
from repro.engine.calibrate import calibrate_plan
from repro.engine.stream import StreamConfig
from repro.logical.builder import PlanBuilder
from repro.mqo.merge import MQOOptimizer
from repro.relational.expressions import agg_max, agg_sum, col
from repro.relational.schema import Schema, INT, FLOAT
from repro.relational.table import Catalog

from .util import assert_plan_correct, batch_reference


@pytest.fixture(scope="module")
def q15_pair():
    rng = random.Random(9)
    catalog = Catalog()
    stream = catalog.create("s", Schema.of(("k", INT), ("v", FLOAT), ("w", INT)))
    for _ in range(3000):
        stream.append((rng.randrange(200), float(rng.randint(1, 9)),
                       rng.randrange(100)))

    def q15_like(qid, name, hi):
        return (
            PlanBuilder.scan(catalog, "s")
            .where(col("w") < hi)
            .aggregate(["k"], [agg_sum(col("v"), "t")])
            .aggregate([], [agg_max(col("t"), "m")])
            .as_query(qid, name)
        )

    queries = [q15_like(0, "lazy_max", 95), q15_like(1, "eager_max", 90)]
    plan = MQOOptimizer(catalog).build_shared_plan(queries)
    config = StreamConfig()
    calibrate_plan(plan, config)
    model = PlanCostModel(plan, CostConfig(state_factor=config.state_factor))
    constraints = model.absolute_constraints({0: 1.0, 1: 0.1})
    found = PaceSearch(model, constraints, max_pace=40).find()
    return catalog, queries, plan, config, model, constraints, found


class TestPartialAdoption:
    def test_decomposition_runs_and_improves_or_keeps(self, q15_pair):
        catalog, queries, plan, config, model, constraints, found = q15_pair
        outcome = decompose_full_plan(
            plan, found.pace_config, constraints, 40,
            cost_config=CostConfig(state_factor=config.state_factor),
            cost_model=model,
        )
        outcome.plan.validate()
        # feasibility-first acceptance: never worse on both axes
        from repro.core.decompose import total_missed_final_work

        assert total_missed_final_work(
            outcome.evaluation, constraints
        ) <= total_missed_final_work(found.evaluation, constraints) + 1e-6

    def test_decomposed_plan_correct_under_found_paces(self, q15_pair):
        catalog, queries, plan, config, model, constraints, found = q15_pair
        outcome = decompose_full_plan(
            plan, found.pace_config, constraints, 40,
            cost_config=CostConfig(state_factor=config.state_factor),
        )
        reference = batch_reference(catalog, queries)
        assert_plan_correct(
            outcome.plan, queries, reference, paces=outcome.pace_config,
            stream_config=config,
        )

    def test_partial_candidates_exist_for_shared_subplan(self, q15_pair):
        from repro.core.partial import partial_cut_candidates

        catalog, queries, plan, *_ = q15_pair
        shared = plan.shared_subplans()[0]
        candidates = list(partial_cut_candidates(plan, shared.sid))
        assert candidates
        # at least one candidate keeps the grouped SUM in the bottom
        found_sum_bottom = False
        for cut_plan, top_sid, bottom_sids in candidates:
            for bottom_sid in bottom_sids:
                bottom = cut_plan.subplan_by_id(bottom_sid)
                if any(
                    node.kind == "aggregate" and node.group_by
                    for node in bottom.root.walk()
                ):
                    found_sum_bottom = True
        assert found_sum_bottom
