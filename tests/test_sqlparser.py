"""Tests for the SQL-subset frontend: lexer, parser, lowering."""

import pytest

from repro.errors import ParseError
from repro.logical.ops import Aggregate, Join, Project, Scan, Select
from repro.relational.expressions import Contains, StartsWith
from repro.sqlparser import parse_query, parse_sql, tokenize
from repro.sqlparser.ast import (
    AggCall,
    BinaryExpr,
    JoinSource,
    SelectStmt,
    SubquerySource,
    TableSource,
)
from repro.sqlparser.lower import lower_select

from .util import batch_reference, make_toy_catalog, assert_plan_correct
from repro.mqo.merge import build_unshared_plan


class TestLexer:
    def test_keywords_case_insensitive(self):
        tokens = tokenize("select From WHERE")
        assert [t.value for t in tokens[:-1]] == ["SELECT", "FROM", "WHERE"]

    def test_identifiers_preserve_case(self):
        tokens = tokenize("l_shipdate Brand#23x")
        assert tokens[0].value == "l_shipdate"
        assert tokens[1].value == "Brand#23x"

    def test_numbers(self):
        tokens = tokenize("42 3.14")
        assert tokens[0].value == 42
        assert tokens[1].value == pytest.approx(3.14)

    def test_strings(self):
        tokens = tokenize("'hello world'")
        assert tokens[0].kind == "string"
        assert tokens[0].value == "hello world"

    def test_unterminated_string(self):
        with pytest.raises(ParseError, match="unterminated"):
            tokenize("'oops")

    def test_comments_skipped(self):
        tokens = tokenize("SELECT -- a comment\n 1")
        assert [t.kind for t in tokens] == ["keyword", "number", "eof"]

    def test_multi_char_operators(self):
        tokens = tokenize("<= >= <> !=")
        assert [t.value for t in tokens[:-1]] == ["<=", ">=", "<>", "!="]

    def test_unexpected_character(self):
        with pytest.raises(ParseError, match="unexpected"):
            tokenize("SELECT @")

    def test_qualified_name_not_a_float(self):
        tokens = tokenize("t1.col")
        assert [t.kind for t in tokens[:-1]] == ["ident", "op", "ident"]


class TestParser:
    def test_simple_select(self):
        stmt = parse_sql("SELECT a, b FROM t")
        assert isinstance(stmt, SelectStmt)
        assert len(stmt.items) == 2
        assert isinstance(stmt.source, TableSource)

    def test_aliases(self):
        stmt = parse_sql("SELECT a AS x, b y FROM t")
        assert stmt.items[0].alias == "x"
        assert stmt.items[1].alias == "y"

    def test_join_on(self):
        stmt = parse_sql("SELECT a FROM t JOIN u ON k1 = k2")
        assert isinstance(stmt.source, JoinSource)
        assert stmt.source.left_key == "k1"
        assert stmt.source.right_key == "k2"

    def test_chained_joins_left_associative(self):
        stmt = parse_sql("SELECT a FROM t JOIN u ON k1 = k2 JOIN v ON k3 = k4")
        assert isinstance(stmt.source, JoinSource)
        assert isinstance(stmt.source.left, JoinSource)

    def test_subquery_source_requires_alias(self):
        stmt = parse_sql("SELECT a FROM (SELECT a FROM t) AS sub")
        assert isinstance(stmt.source, SubquerySource)
        assert stmt.source.alias == "sub"

    def test_where_group_having(self):
        stmt = parse_sql(
            "SELECT g, SUM(v) AS s FROM t WHERE v > 1 GROUP BY g HAVING s > 10"
        )
        assert stmt.where is not None
        assert stmt.group_by == ("g",)
        assert stmt.having is not None

    def test_operator_precedence(self):
        stmt = parse_sql("SELECT a FROM t WHERE a + b * 2 > 4 AND c = 1 OR d = 2")
        # OR at the top, AND below it
        assert isinstance(stmt.where, BinaryExpr)
        assert stmt.where.op == "or"
        assert stmt.where.left.op == "and"

    def test_in_between_like(self):
        stmt = parse_sql(
            "SELECT a FROM t WHERE a IN (1, 2) AND b BETWEEN 1 AND 5 "
            "AND c LIKE 'x%' AND d NOT IN (3)"
        )
        assert stmt.where is not None

    def test_count_star(self):
        stmt = parse_sql("SELECT COUNT(*) AS n FROM t GROUP BY g")
        assert isinstance(stmt.items[0].expr, AggCall)
        assert stmt.items[0].expr.argument is None

    def test_unary_minus(self):
        stmt = parse_sql("SELECT a FROM t WHERE a > -5")
        assert stmt.where is not None

    def test_trailing_input_rejected(self):
        with pytest.raises(ParseError, match="trailing"):
            parse_sql("SELECT a FROM t extra garbage here")

    def test_missing_from_rejected(self):
        with pytest.raises(ParseError):
            parse_sql("SELECT a")

    def test_error_carries_position(self):
        with pytest.raises(ParseError) as info:
            parse_sql("SELECT a FROM")
        assert info.value.position is not None


class TestLowering:
    @pytest.fixture()
    def catalog(self, toy_catalog):
        return toy_catalog

    def test_projection_only(self, catalog):
        plan = lower_select(catalog, parse_sql(
            "SELECT item_id, price * 2 AS double_price FROM items"
        ))
        assert isinstance(plan, Project)
        assert plan.schema.names() == ("item_id", "double_price")

    def test_where_becomes_select(self, catalog):
        plan = lower_select(catalog, parse_sql(
            "SELECT item_id FROM items WHERE price > 10"
        ))
        assert isinstance(plan, Project)
        assert isinstance(plan.child, Select)

    def test_join_lowering(self, catalog):
        plan = lower_select(catalog, parse_sql(
            "SELECT item_id FROM items JOIN categories ON item_cat = cat_id"
        ))
        join = plan.child
        assert isinstance(join, Join)
        assert join.left_keys == ("item_cat",)

    def test_group_by_lowering(self, catalog):
        plan = lower_select(catalog, parse_sql(
            "SELECT item_cat, SUM(price) AS total, COUNT(*) AS n "
            "FROM items GROUP BY item_cat"
        ))
        assert isinstance(plan, Aggregate)
        assert plan.schema.names() == ("item_cat", "total", "n")

    def test_having_becomes_select_above_aggregate(self, catalog):
        plan = lower_select(catalog, parse_sql(
            "SELECT item_cat, SUM(price) AS total FROM items "
            "GROUP BY item_cat HAVING total > 100"
        ))
        assert isinstance(plan, Select)
        assert isinstance(plan.child, Aggregate)

    def test_like_prefix_lowered_to_startswith(self, catalog):
        plan = lower_select(catalog, parse_sql(
            "SELECT cat_id FROM categories WHERE cat_name LIKE 'cat1%'"
        ))
        assert isinstance(plan.child.predicate, StartsWith)

    def test_like_infix_lowered_to_contains(self, catalog):
        plan = lower_select(catalog, parse_sql(
            "SELECT cat_id FROM categories WHERE cat_name LIKE '%at%'"
        ))
        assert isinstance(plan.child.predicate, Contains)

    def test_unsupported_like_pattern_rejected(self, catalog):
        with pytest.raises(ParseError, match="LIKE"):
            lower_select(catalog, parse_sql(
                "SELECT cat_id FROM categories WHERE cat_name LIKE 'a%b%c'"
            ))

    def test_group_by_missing_column_rejected(self, catalog):
        with pytest.raises(ParseError, match="GROUP BY"):
            lower_select(catalog, parse_sql(
                "SELECT nope, COUNT(*) AS n FROM items GROUP BY nope"
            ))

    def test_bare_column_without_group_rejected(self, catalog):
        with pytest.raises(ParseError, match="GROUP BY"):
            lower_select(catalog, parse_sql(
                "SELECT price, COUNT(*) AS n FROM items GROUP BY item_cat"
            ))

    def test_having_without_aggregate_rejected(self, catalog):
        with pytest.raises(ParseError, match="HAVING"):
            lower_select(catalog, parse_sql(
                "SELECT item_id FROM items HAVING item_id > 1"
            ))


class TestSqlEndToEnd:
    def test_sql_matches_builder_results(self, toy_catalog):
        sql = parse_query(toy_catalog, """
            SELECT cat_name, SUM(qty) AS total_qty
            FROM events
            JOIN items ON ev_item = item_id
            JOIN categories ON item_cat = cat_id
            GROUP BY cat_name
        """, 0, "sql_total")
        from .util import toy_query_total

        builder = toy_query_total(toy_catalog, 0)
        reference = batch_reference(toy_catalog, [builder])
        plan = build_unshared_plan(toy_catalog, [sql])
        assert_plan_correct(plan, [sql], reference)

    def test_sql_query_runs_incrementally(self, toy_catalog):
        sql = parse_query(toy_catalog, """
            SELECT kind, COUNT(*) AS n, SUM(qty * 2) AS double_qty
            FROM events WHERE day < 60 GROUP BY kind
        """, 0, "sql_inc")
        reference = batch_reference(toy_catalog, [sql])
        plan = build_unshared_plan(toy_catalog, [sql])
        assert_plan_correct(plan, [sql], reference,
                            paces={s.sid: 9 for s in plan.subplans})
