"""Independent oracles: the engine vs hand-rolled Python computations.

Everything else in the suite checks the engine against itself (batch vs
incremental, shared vs unshared).  These tests compute expected results
with plain dictionaries and loops -- no engine code at all -- so a bug
shared by every engine path would still be caught.
"""

import pytest

from repro.engine.executor import PlanExecutor
from repro.mqo.merge import build_unshared_plan
from repro.sqlparser import parse_query
from repro.workloads.tpch import build_workload, generate_catalog
from repro.workloads.tpch.schema import date_of

from .util import batch_reference


@pytest.fixture(scope="module")
def catalog():
    return generate_catalog(scale=0.2, seed=13)


def rows_of(catalog, name):
    table = catalog.get(name)
    names = table.schema.names()
    return [dict(zip(names, row)) for row in table.rows]


class TestQ1Oracle:
    def test_q1_matches_manual_computation(self, catalog):
        cutoff = date_of(1998, 9, 2)
        expected = {}
        for row in rows_of(catalog, "lineitem"):
            if row["l_shipdate"] > cutoff:
                continue
            key = (row["l_returnflag"], row["l_linestatus"])
            bucket = expected.setdefault(
                key, {"qty": 0.0, "base": 0.0, "disc": 0.0, "count": 0}
            )
            bucket["qty"] += row["l_quantity"]
            bucket["base"] += row["l_extendedprice"]
            bucket["disc"] += row["l_extendedprice"] * (1 - row["l_discount"])
            bucket["count"] += 1

        queries = build_workload(catalog, ("Q1",))
        result = batch_reference(catalog, queries)[0]
        assert len(result) == len(expected)
        for row in result:
            flag, status, sum_qty, base, disc, avg_qty, count = row
            bucket = expected[(flag, status)]
            assert sum_qty == pytest.approx(bucket["qty"])
            assert base == pytest.approx(bucket["base"])
            assert disc == pytest.approx(bucket["disc"])
            assert avg_qty == pytest.approx(bucket["qty"] / bucket["count"])
            assert count == bucket["count"]


class TestQ6Oracle:
    def test_q6_matches_manual_computation(self, catalog):
        lo, hi = date_of(1994, 1, 1), date_of(1995, 1, 1)
        expected = sum(
            row["l_extendedprice"] * row["l_discount"]
            for row in rows_of(catalog, "lineitem")
            if lo <= row["l_shipdate"] < hi
            and 0.05 <= row["l_discount"] <= 0.07
            and row["l_quantity"] < 24
        )
        queries = build_workload(catalog, ("Q6",))
        result = batch_reference(catalog, queries)[0]
        if expected == 0:
            assert result == {}
        else:
            ((revenue,),) = [row for row in result]
            assert revenue == pytest.approx(expected)


class TestJoinOracle:
    def test_brand_totals_match_manual_join(self, catalog):
        brands = {
            row["p_partkey"]: row["p_brand"] for row in rows_of(catalog, "part")
        }
        expected = {}
        for row in rows_of(catalog, "lineitem"):
            brand = brands[row["l_partkey"]]
            expected[brand] = expected.get(brand, 0.0) + row["l_quantity"]

        query = parse_query(catalog, """
            SELECT p_brand, SUM(l_quantity) AS total
            FROM lineitem JOIN part ON l_partkey = p_partkey
            GROUP BY p_brand
        """, 0, "brand_totals")
        plan = build_unshared_plan(catalog, [query])
        result = PlanExecutor(plan).run({0: 1}).query_results[0]
        assert len(result) == len(expected)
        for (brand, total), count in result.items():
            assert count == 1
            assert total == pytest.approx(expected[brand])

    def test_incremental_pace_agrees_with_oracle(self, catalog):
        suppliers = {
            row["s_suppkey"]: row["s_nationkey"]
            for row in rows_of(catalog, "supplier")
        }
        expected = {}
        for row in rows_of(catalog, "lineitem"):
            nation = suppliers[row["l_suppkey"]]
            expected[nation] = expected.get(nation, 0) + 1

        query = parse_query(catalog, """
            SELECT s_nationkey, COUNT(*) AS n
            FROM lineitem JOIN supplier ON l_suppkey = s_suppkey
            GROUP BY s_nationkey
        """, 0, "nation_counts")
        plan = build_unshared_plan(catalog, [query])
        result = PlanExecutor(plan).run({0: 7}).query_results[0]
        assert {key: n for (key, n), _ in result.items()} == expected


class TestTwoLevelOracle:
    def test_max_of_sums_matches_manual(self, catalog):
        sums = {}
        for row in rows_of(catalog, "lineitem"):
            sums[row["l_suppkey"]] = (
                sums.get(row["l_suppkey"], 0.0) + row["l_quantity"]
            )
        expected = max(sums.values())

        query = parse_query(catalog, """
            SELECT MAX(total) AS m
            FROM (
                SELECT l_suppkey, SUM(l_quantity) AS total
                FROM lineitem GROUP BY l_suppkey
            ) AS sums
        """, 0, "max_of_sums")
        plan = build_unshared_plan(catalog, [query])
        for pace in (1, 6):
            result = PlanExecutor(plan).run({s.sid: pace for s in plan.subplans})
            ((value,),) = list(result.query_results[0])
            assert value == pytest.approx(expected)
