"""Tests for logical plans: builder, schemas, signatures, blocking cuts."""

import pytest

from repro.errors import PlanError
from repro.logical.builder import PlanBuilder, validate_query_ids
from repro.logical.ops import (
    Aggregate,
    Join,
    Project,
    Query,
    Scan,
    Select,
    format_plan,
)
from repro.relational.expressions import agg_count, agg_sum, col


@pytest.fixture()
def catalog(toy_catalog):
    return toy_catalog


class TestBuilder:
    def test_scan_resolves_schema(self, catalog):
        builder = PlanBuilder.scan(catalog, "items")
        assert builder.schema.names() == ("item_id", "item_cat", "price")

    def test_where_keeps_schema(self, catalog):
        builder = PlanBuilder.scan(catalog, "items").where(col("price") > 5)
        assert builder.schema.names() == ("item_id", "item_cat", "price")

    def test_project_with_shorthand(self, catalog):
        builder = PlanBuilder.scan(catalog, "items").project(
            ["item_id", ("double_price", col("price") * 2)]
        )
        assert builder.schema.names() == ("item_id", "double_price")

    def test_join_schema_concatenates(self, catalog):
        builder = PlanBuilder.scan(catalog, "items").join(
            PlanBuilder.scan(catalog, "categories"), "item_cat", "cat_id"
        )
        assert builder.schema.names() == (
            "item_id", "item_cat", "price", "cat_id", "cat_name", "region",
        )

    def test_join_accepts_string_keys(self, catalog):
        a = PlanBuilder.scan(catalog, "items")
        b = PlanBuilder.scan(catalog, "categories")
        joined = a.join(b, "item_cat", "cat_id")
        assert isinstance(joined.op, Join)
        assert joined.op.left_keys == ("item_cat",)

    def test_aggregate_schema(self, catalog):
        builder = PlanBuilder.scan(catalog, "items").aggregate(
            "item_cat", [agg_sum(col("price"), "total"), agg_count("n")]
        )
        assert builder.schema.names() == ("item_cat", "total", "n")

    def test_as_query(self, catalog):
        query = PlanBuilder.scan(catalog, "items").as_query(3, "scan_items")
        assert isinstance(query, Query)
        assert query.query_id == 3


class TestOperatorValidation:
    def test_join_requires_keys(self, catalog):
        left = Scan("items", catalog.get("items").schema)
        right = Scan("categories", catalog.get("categories").schema)
        with pytest.raises(PlanError):
            Join(left, right, [], [])

    def test_join_key_must_exist(self, catalog):
        left = Scan("items", catalog.get("items").schema)
        right = Scan("categories", catalog.get("categories").schema)
        with pytest.raises(Exception):
            Join(left, right, ["missing"], ["cat_id"])

    def test_aggregate_requires_specs(self, catalog):
        scan = Scan("items", catalog.get("items").schema)
        with pytest.raises(PlanError):
            Aggregate(scan, ["item_cat"], [])

    def test_project_requires_exprs(self, catalog):
        scan = Scan("items", catalog.get("items").schema)
        with pytest.raises(PlanError):
            Project(scan, [])

    def test_select_requires_expression(self, catalog):
        scan = Scan("items", catalog.get("items").schema)
        with pytest.raises(PlanError):
            Select(scan, "not an expression")

    def test_query_requires_logical_root(self):
        with pytest.raises(PlanError):
            Query(0, "bad", "nope")


class TestSignatures:
    def test_differing_selects_share_structure(self, catalog):
        base = PlanBuilder.scan(catalog, "items")
        a = base.where(col("price") > 5).build()
        b = base.where(col("price") > 50).build()
        assert a.structural_signature() == b.structural_signature()
        assert a.exact_signature() != b.exact_signature()

    def test_differing_projects_share_structure(self, catalog):
        base = PlanBuilder.scan(catalog, "items")
        a = base.project(["item_id"]).build()
        b = base.project(["price"]).build()
        assert a.structural_signature() == b.structural_signature()
        assert a.exact_signature() != b.exact_signature()

    def test_differing_aggregates_do_not_share(self, catalog):
        base = PlanBuilder.scan(catalog, "items")
        a = base.aggregate("item_cat", [agg_sum(col("price"), "t")]).build()
        b = base.aggregate("item_cat", [agg_count("t")]).build()
        assert a.structural_signature() != b.structural_signature()

    def test_differing_tables_do_not_share(self, catalog):
        a = PlanBuilder.scan(catalog, "items").build()
        b = PlanBuilder.scan(catalog, "categories").build()
        assert a.structural_signature() != b.structural_signature()

    def test_differing_join_keys_do_not_share(self, catalog):
        items = PlanBuilder.scan(catalog, "events")
        other = PlanBuilder.scan(catalog, "items")
        a = items.join(other, "ev_item", "item_id").build()
        b = items.join(other, "qty", "price").build()
        assert a.structural_signature() != b.structural_signature()


class TestStructureHelpers:
    def test_walk_and_count(self, catalog):
        plan = (
            PlanBuilder.scan(catalog, "items")
            .where(col("price") > 1)
            .aggregate("item_cat", [agg_count("n")])
            .build()
        )
        kinds = [op.kind for op in plan.walk()]
        assert kinds == ["aggregate", "select", "scan"]
        assert plan.operator_count() == 3

    def test_blocking_flags(self, catalog):
        scan = Scan("items", catalog.get("items").schema)
        assert not scan.is_blocking()
        agg = Aggregate(scan, ["item_cat"], [agg_count("n")])
        assert agg.is_blocking()

    def test_format_plan_is_indented(self, catalog):
        plan = (
            PlanBuilder.scan(catalog, "items")
            .where(col("price") > 1)
            .build()
        )
        text = format_plan(plan)
        assert "Select" in text and "Scan" in text
        assert "\n  " in text


class TestQueryIdValidation:
    def test_dense_ids_pass(self, catalog):
        queries = [
            PlanBuilder.scan(catalog, "items").as_query(0, "a"),
            PlanBuilder.scan(catalog, "items").as_query(1, "b"),
        ]
        validate_query_ids(queries)

    def test_sparse_ids_rejected(self, catalog):
        queries = [
            PlanBuilder.scan(catalog, "items").as_query(0, "a"),
            PlanBuilder.scan(catalog, "items").as_query(2, "b"),
        ]
        with pytest.raises(PlanError, match="dense"):
            validate_query_ids(queries)
