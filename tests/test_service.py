"""Tests for the long-running multi-tenant service mode."""

import json

import pytest

from repro import obs
from repro.core.optimizer import OptimizerConfig
from repro.errors import OptimizationError, ServiceError
from repro.harness.service import run_service_schedule, shard_of
from repro.logical.ops import Query
from repro.obs import OBS
from repro.service.core import QueryService
from repro.service.schedule import DEMO_SCHEDULE, validate_schedule
from repro.engine.compare import assert_results_close

from .util import (
    batch_reference,
    make_toy_catalog,
    toy_query_max,
    toy_query_region,
    toy_query_total,
)


def toy_service(**kwargs):
    """A service over the deterministic toy star schema."""
    return QueryService(
        lambda window: make_toy_catalog(seed=41 + window),
        OptimizerConfig(max_pace=6),
        **kwargs,
    )


class TestRegistrationValidation:
    def test_rejects_bad_query_id(self):
        service = toy_service()
        query = toy_query_total(service.basis_catalog, 0)
        query.query_id = "zero"
        with pytest.raises(ServiceError, match="query_id"):
            service.register(query, "a", 0.5)

    def test_rejects_empty_tenant(self):
        service = toy_service()
        query = toy_query_total(service.basis_catalog, 0)
        with pytest.raises(ServiceError, match="tenant"):
            service.register(query, "", 0.5)

    def test_rejects_non_positive_goal(self):
        service = toy_service()
        query = toy_query_total(service.basis_catalog, 0)
        for goal in (0, -1.0, True, "fast"):
            with pytest.raises(ServiceError, match="goal"):
                service.register(query, "a", goal)

    def test_rejects_duplicate_query_id(self):
        service = toy_service()
        catalog = service.basis_catalog
        service.register(toy_query_total(catalog, 7), "a", 5.0)
        with pytest.raises(ServiceError, match="already registered"):
            service.register(toy_query_region(catalog, 7), "b", 5.0)

    def test_deregister_unknown_id_is_descriptive(self):
        service = toy_service()
        service.register(toy_query_total(service.basis_catalog, 3), "a", 5.0)
        with pytest.raises(OptimizationError, match="not registered") as err:
            service.deregister(99)
        assert "3" in str(err.value)  # the live ids are listed
        service.deregister(3)
        with pytest.raises(OptimizationError, match="already deregistered"):
            service.deregister(3)


class TestAdmission:
    def test_unsatisfiable_goal_is_rejected_not_raised(self):
        service = toy_service()
        query = toy_query_total(service.basis_catalog, 0)
        decision = service.register(query, "a", 1e-12)
        assert decision.status == "rejected"
        assert decision.reason.startswith("goal_unsatisfiable")
        assert service.registrations == {}
        assert service.plan is None

    def test_tenant_budget_rejection(self):
        probe = toy_service()
        probe.register(toy_query_total(probe.basis_catalog, 0), "a", 50.0)
        solo = probe.model.solo_batch(probe.slots[0])[0]

        service = toy_service(tenant_budgets={"a": solo * 1.5})
        catalog = service.basis_catalog
        assert service.register(
            toy_query_total(catalog, 0), "a", 50.0
        ).status == "admitted"
        second = service.register(toy_query_region(catalog, 1), "a", 50.0)
        assert second.status == "rejected"
        assert second.reason.startswith("tenant_budget")
        # another tenant is not constrained by a's budget
        assert service.register(
            toy_query_region(catalog, 2), "b", 50.0
        ).status == "admitted"

    def test_queue_mode_retries_after_deregistration(self):
        probe = toy_service()
        probe.register(toy_query_total(probe.basis_catalog, 0), "a", 50.0)
        solo = probe.model.solo_batch(probe.slots[0])[0]

        service = toy_service(
            admission="queue", tenant_budgets={"a": solo * 1.5}
        )
        catalog = service.basis_catalog
        service.register(toy_query_total(catalog, 0), "a", 50.0)
        queued = service.register(toy_query_total(catalog, 1), "a", 50.0)
        assert queued.status == "queued"
        assert [r.query_id for r in service.pending] == [1]

        service.deregister(0)
        retried = [d for d in service.decisions if d.reason.startswith("retry:")]
        assert retried and retried[-1].query_id == 1
        assert retried[-1].status == "admitted"
        assert service.pending == []
        assert 1 in service.registrations

    def test_invalid_admission_mode(self):
        with pytest.raises(ServiceError, match="admission"):
            toy_service(admission="drop")


class TestServiceExecution:
    def test_results_match_unshared_reference_with_sparse_ids(self):
        # external ids 10/11/12 prove the dense-slot renumbering works
        service = toy_service()
        catalog = service.basis_catalog
        dense = [
            toy_query_total(catalog, 0),
            toy_query_region(catalog, 1),
            toy_query_max(catalog, 2),
        ]
        reference = batch_reference(catalog, dense)
        for ext, query in zip((10, 11, 12), dense):
            decision = service.register(
                Query(ext, query.name, query.root), "t", 50.0
            )
            assert decision.status == "admitted"
        outcome = service.run_window(collect_results=True)
        assert outcome.reoptimized
        for ext, query in zip((10, 11, 12), dense):
            assert_results_close(
                outcome.run.query_results[service.slots[ext]],
                reference[query.query_id],
                context="service query %d" % ext,
            )

    def test_deregistration_shifts_slots_and_reuses_subplans(self):
        service = toy_service()
        catalog = service.basis_catalog
        dense = [
            toy_query_total(catalog, 0),
            toy_query_region(catalog, 1),
            toy_query_max(catalog, 2),
        ]
        for ext, query in zip((0, 1, 2), dense):
            service.register(query, "t", 50.0)
        service.run_window()

        service.deregister(0)  # shifts q1 -> slot 0, q2 -> slot 1
        assert service.slots == {1: 0, 2: 1}
        merge = service._last_merge
        # toy_query_max shares nothing with the departed query: all of its
        # subplans survive the re-merge with their calibrated state
        assert merge.matched, "slot shift must not defeat subplan matching"

        # the second trigger executes against window 1's data
        window1 = make_toy_catalog(seed=42)
        reference = batch_reference(window1, dense)
        outcome = service.run_window(collect_results=True)
        for ext in (1, 2):
            assert_results_close(
                outcome.run.query_results[service.slots[ext]],
                reference[ext],
                context="surviving query %d" % ext,
            )

    def test_idle_windows_advance_the_clock(self):
        service = toy_service()
        idle = service.run_window()
        assert idle.total_work == 0.0 and idle.queries == {}
        assert service.window == 1
        service.register(
            toy_query_total(service.basis_catalog, 0), "a", 50.0
        )
        assert service.registrations[0].registered_window == 1

    def test_reoptimize_scope_is_incremental_on_churn(self):
        obs.enable(process_name="test-service")
        try:
            service = toy_service()
            catalog = service.basis_catalog
            service.register(toy_query_total(catalog, 0), "a", 50.0)
            service.run_window()
            service.register(toy_query_max(catalog, 1), "a", 50.0)
            service.run_window()
            records = OBS.declog.of_event("service_reoptimize")
            assert len(records) == 2
            assert records[1]["scope"] == "incremental"
            assert records[1]["reused"], "prior subplans must be reused"
            admissions = OBS.declog.of_event("service_admission")
            assert [r["status"] for r in admissions] == ["admitted"] * 2
        finally:
            obs.disable()


class TestScheduleValidation:
    def test_demo_schedule_is_valid(self):
        ordered = validate_schedule(DEMO_SCHEDULE)
        assert [e["at"] for _, e in ordered] == sorted(
            e["at"] for e in DEMO_SCHEDULE["events"]
        )

    def test_rejects_unknown_op(self):
        with pytest.raises(ServiceError, match="unknown op"):
            validate_schedule(
                {"windows": 1, "events": [{"op": "pause", "at": 0, "query_id": 0}]}
            )

    def test_rejects_bad_windows(self):
        for windows in (0, -1, None, 1.5, True):
            with pytest.raises(ServiceError, match="windows"):
                validate_schedule({"windows": windows, "events": []})

    def test_rejects_deregister_of_never_registered(self):
        with pytest.raises(ServiceError, match="no earlier event registered"):
            validate_schedule(
                {
                    "windows": 1,
                    "events": [{"op": "deregister", "at": 5.0, "query_id": 3}],
                }
            )

    def test_rejects_negative_timestamp(self):
        with pytest.raises(ServiceError, match="'at'"):
            validate_schedule(
                {
                    "windows": 1,
                    "events": [
                        {"op": "register", "at": -1, "query_id": 0,
                         "tenant": "a", "query": "Q1", "goal": 1.0}
                    ],
                }
            )


SMALL_SCHEDULE = {
    "workload": {"scale": 0.04, "seed": 100},
    "window_seconds": 60.0,
    "windows": 2,
    "shards": 2,
    "max_pace": 4,
    "admission": "reject",
    "events": [
        {"at": 0.0, "op": "register", "query_id": 0, "tenant": "alpha",
         "query": "Q1", "goal": 5.0},
        {"at": 5.0, "op": "register", "query_id": 1, "tenant": "beta",
         "query": "Q6", "goal": 5.0},
        {"at": 70.0, "op": "register", "query_id": 2, "tenant": "alpha",
         "query": "Q12", "goal": 5.0},
    ],
}


class TestSlackAndAttribution:
    def _run_outcome(self):
        service = toy_service()
        catalog = service.basis_catalog
        service.register(toy_query_total(catalog, 0), "alpha", 50.0)
        service.register(toy_query_region(catalog, 1), "beta", 50.0)
        return service, service.run_window()

    def test_outcome_carries_slack_entries(self):
        service, outcome = self._run_outcome()
        assert set(outcome.slack) == {0, 1}
        for entry in outcome.slack.values():
            assert entry["goal_work"] > 0
            assert entry["headroom_work"] == pytest.approx(
                entry["goal_work"] - entry["final_work"]
            )
            # admission already evaluated the eagerest plan; the deferral
            # breakdown must therefore always be present in service mode
            assert "slack_available_work" in entry
            assert entry["deferred_work"] >= 0.0
            assert "goal_seconds" in entry

    def test_attribution_is_conservation_exact(self):
        from fractions import Fraction

        service, outcome = self._run_outcome()
        assert outcome.conserved is True
        assert set(outcome.attribution) == {0, 1}
        for qid, entry in outcome.queries.items():
            assert entry["attributed_work"] == pytest.approx(
                outcome.attribution[qid]
            )
        # the exact rational shares sum to the exact sum of the measured
        # per-subplan totals -- equality, not a tolerance
        _, shares = service.attribution.windows[-1]
        served = {
            subplan.sid
            for subplan in service.plan.subplans
            if subplan.query_ids()
        }
        measured = sum(
            (Fraction(work)
             for sid, work in outcome.run.subplan_total_work.items()
             if sid in served),
            Fraction(0),
        )
        assert sum(shares.values(), Fraction(0)) == measured

    def test_tenant_buckets_hold_attributed_work(self):
        service, outcome = self._run_outcome()
        assert outcome.tenants["alpha"]["work"] == pytest.approx(
            outcome.attribution[0]
        )
        assert sum(b["work"] for b in outcome.tenants.values()) == \
            pytest.approx(sum(outcome.attribution.values()))

    def test_drift_builds_up_across_windows(self):
        service, _ = self._run_outcome()
        second = service.run_window()
        for entry in second.slack.values():
            assert "drift_work_per_window" in entry
        # the service ledger saw both windows
        assert len(service.slack) == 2

    def test_service_slack_declog_record(self):
        obs.enable(process_name="test-service")
        try:
            _, outcome = self._run_outcome()
            [record] = OBS.declog.of_event("service_slack")
            assert record["min_headroom_work"] == pytest.approx(
                min(e["headroom_work"] for e in outcome.slack.values())
            )
            assert record["missed"] == sum(
                1 for e in outcome.slack.values() if e["missed"]
            )
            assert "projected_misses" in record
        finally:
            obs.disable()


class TestShardedHarness:
    def test_shard_of_is_stable(self):
        assert shard_of("alpha", 2) == shard_of("alpha", 2)
        assert 0 <= shard_of("alpha", 3) < 3

    def test_serial_and_parallel_reports_are_bit_identical(self):
        serial = run_service_schedule(SMALL_SCHEDULE, jobs=1)
        parallel = run_service_schedule(SMALL_SCHEDULE, jobs=2)
        assert json.dumps(serial, sort_keys=True) == json.dumps(
            parallel, sort_keys=True
        )

    def test_summary_counts_add_up(self):
        report = run_service_schedule(SMALL_SCHEDULE, jobs=1)
        summary = report["summary"]
        assert summary["admission"]["admitted"] == 3
        assert summary["query_windows"] == sum(
            len(w["queries"]) for shard in report["shards"]
            for w in shard["windows"]
        )
        assert summary["total_work"] == pytest.approx(
            sum(
                w["total_work"] for shard in report["shards"]
                for w in shard["windows"]
            )
        )

    def test_summary_slack_and_conservation(self):
        report = run_service_schedule(SMALL_SCHEDULE, jobs=1)
        summary = report["summary"]
        assert summary["attribution_conserved"] is True
        slack = summary["slack"]
        assert slack["min_headroom_work"] is not None
        assert slack["deferred_work"] >= 0.0
        for shard in report["shards"]:
            assert shard["feedback"], "shards must export feedback factors"
            for window in shard["windows"]:
                assert set(window["slack"]) == set(window["queries"])
                assert window["attribution"]["conserved"] is True


CHURN_SCHEDULE = dict(
    SMALL_SCHEDULE,
    windows=3,
    events=SMALL_SCHEDULE["events"] + [
        {"at": 130.0, "op": "deregister", "query_id": 0},
    ],
)


class TestObsBitIdentity:
    """Satellite: the merged observability state of a churn schedule --
    decision log, counters, deterministic work histograms, span-name
    sequence -- is bit-identical between serial and ``--jobs 2`` runs."""

    @staticmethod
    def _obs_state():
        snapshot = OBS.metrics.snapshot()
        counters = {
            key: payload for key, payload in snapshot.items()
            if payload["type"] == "counter"
            and not key.startswith("engine.compile_cache.")
        }
        # wall-clock histograms (*.seconds) and process-lifetime gauges
        # are legitimately nondeterministic; everything else must match
        histograms = {
            key: payload for key, payload in snapshot.items()
            if payload["type"] == "histogram"
            and not key.partition("{")[0].endswith(".seconds")
        }
        spans = [
            event["name"] for event in OBS.tracer.events
            if event.get("ph") == "X"
        ]
        return counters, histograms, spans, list(OBS.declog.records)

    def test_serial_and_parallel_obs_payloads_match(self):
        states = {}
        reports = {}
        for jobs in (1, 2):
            obs.disable()
            obs.enable(process_name="driver")
            try:
                reports[jobs] = run_service_schedule(CHURN_SCHEDULE, jobs=jobs)
                states[jobs] = self._obs_state()
            finally:
                obs.disable()
        assert json.dumps(reports[1], sort_keys=True) == json.dumps(
            reports[2], sort_keys=True
        )
        serial, parallel = states[1], states[2]
        assert serial[3] == parallel[3], "decision logs diverged"
        assert serial[0] == parallel[0], "counters diverged"
        assert serial[1] == parallel[1], "work histograms diverged"
        assert serial[2] == parallel[2], "span sequences diverged"
        # churn really happened and was logged under shard run ids
        runs = {record["run"] for record in serial[3]}
        assert runs == {"shard-0", "shard-1"}
        assert any(
            record["event"] == "service_deregister" for record in serial[3]
        )
        assert any(
            record["event"] == "service_slack" for record in serial[3]
        )
