"""Engine edge cases: shared roots, custom schedules, degenerate plans."""

from fractions import Fraction

import pytest

from repro.engine.compare import assert_results_close
from repro.engine.executor import PlanExecutor
from repro.engine.stream import StreamConfig
from repro.errors import ExecutionError
from repro.logical.builder import PlanBuilder
from repro.mqo.merge import MQOOptimizer, build_unshared_plan
from repro.relational.expressions import agg_count, agg_sum, col

from .util import batch_reference, make_toy_catalog, toy_query_total


class TestIdenticalQueriesSharedRoot:
    def test_both_queries_get_results_from_one_subplan(self, toy_catalog):
        a = toy_query_total(toy_catalog, 0)
        b = toy_query_total(toy_catalog, 1)
        plan = MQOOptimizer(toy_catalog).build_shared_plan([a, b])
        assert len(plan.subplans) == 1
        run = PlanExecutor(plan).run({plan.subplans[0].sid: 3})
        reference = batch_reference(toy_catalog, [a, b])
        for qid in (0, 1):
            assert_results_close(run.query_results[qid], reference[qid])
        # both queries' final work comes from the same final execution
        assert run.query_final_work[0] == run.query_final_work[1]


class TestCustomSchedules:
    def test_two_phase_schedule_matches_batch_results(self, toy_catalog):
        query = toy_query_total(toy_catalog, 0)
        plan = build_unshared_plan(toy_catalog, [query])
        executor = PlanExecutor(plan)
        run = executor.run_schedule({0: [Fraction(3, 5), Fraction(1)]})
        reference = batch_reference(toy_catalog, [query])
        assert_results_close(run.query_results[0], reference[0])
        assert len(run.records) == 2

    def test_schedule_without_trigger_point_rejected(self, toy_catalog):
        query = toy_query_total(toy_catalog, 0)
        plan = build_unshared_plan(toy_catalog, [query])
        executor = PlanExecutor(plan)
        with pytest.raises(ExecutionError, match="trigger point"):
            executor.run_schedule({0: [Fraction(1, 2)]})

    def test_irregular_schedule_correctness(self, toy_catalog):
        query = toy_query_total(toy_catalog, 0)
        plan = build_unshared_plan(toy_catalog, [query])
        executor = PlanExecutor(plan)
        run = executor.run_schedule(
            {0: [Fraction(1, 7), Fraction(1, 6), Fraction(9, 10), Fraction(1)]}
        )
        reference = batch_reference(toy_catalog, [query])
        assert_results_close(run.query_results[0], reference[0])
        assert len(run.records) == 4

    def test_zero_fraction_rejected(self, toy_catalog):
        query = toy_query_total(toy_catalog, 0)
        plan = build_unshared_plan(toy_catalog, [query])
        executor = PlanExecutor(plan)
        with pytest.raises(ExecutionError, match=r"outside \(0, 1\]"):
            executor.run_schedule({0: [Fraction(0), Fraction(1)]})

    def test_fraction_above_one_rejected(self, toy_catalog):
        query = toy_query_total(toy_catalog, 0)
        plan = build_unshared_plan(toy_catalog, [query])
        executor = PlanExecutor(plan)
        with pytest.raises(ExecutionError, match=r"outside \(0, 1\]"):
            executor.run_schedule({0: [Fraction(1, 2), Fraction(3, 2), Fraction(1)]})

    def test_non_ascending_fractions_rejected(self, toy_catalog):
        query = toy_query_total(toy_catalog, 0)
        plan = build_unshared_plan(toy_catalog, [query])
        executor = PlanExecutor(plan)
        with pytest.raises(ExecutionError, match="strictly"):
            executor.run_schedule(
                {0: [Fraction(1, 2), Fraction(1, 2), Fraction(1)]}
            )

    def test_missing_subplan_fractions_rejected(self, toy_catalog):
        query = toy_query_total(toy_catalog, 0)
        plan = build_unshared_plan(toy_catalog, [query])
        executor = PlanExecutor(plan)
        with pytest.raises(ExecutionError, match="no execution fractions"):
            executor.run_schedule({})

    def test_empty_windows_cost_only_overhead(self, toy_catalog):
        query = toy_query_total(toy_catalog, 0)
        plan = build_unshared_plan(toy_catalog, [query])
        config = StreamConfig(execution_overhead=1.0, state_factor=0.0)
        executor = PlanExecutor(plan, config)
        # two executions at (almost) the same point: the second sees nothing
        run = executor.run_schedule(
            {0: [Fraction(999, 1000), Fraction(9991, 10000), Fraction(1)]}
        )
        middle = run.records[1]
        assert middle.work <= 1.0 + 4  # overhead + at most a few stragglers


class TestDegeneratePlans:
    def test_single_row_table(self):
        from repro.relational.schema import Schema, INT
        from repro.relational.table import Catalog

        catalog = Catalog()
        table = catalog.create("one", Schema.of(("x", INT)))
        table.append((42,))
        query = (
            PlanBuilder.scan(catalog, "one")
            .aggregate([], [agg_sum(col("x"), "s"), agg_count("n")])
            .as_query(0, "single")
        )
        plan = build_unshared_plan(catalog, [query])
        run = PlanExecutor(plan).run({0: 5})
        assert run.query_results[0] == {(42, 1): 1}

    def test_empty_table_yields_empty_results(self):
        from repro.relational.schema import Schema, INT
        from repro.relational.table import Catalog

        catalog = Catalog()
        catalog.create("void", Schema.of(("x", INT)))
        query = (
            PlanBuilder.scan(catalog, "void")
            .aggregate([], [agg_count("n")])
            .as_query(0, "empty")
        )
        plan = build_unshared_plan(catalog, [query])
        run = PlanExecutor(plan).run({0: 3})
        assert run.query_results[0] == {}

    def test_filter_rejecting_everything(self, toy_catalog):
        query = (
            PlanBuilder.scan(toy_catalog, "items")
            .where(col("price") > 1e12)
            .aggregate([], [agg_count("n")])
            .as_query(0, "nothing")
        )
        plan = build_unshared_plan(toy_catalog, [query])
        run = PlanExecutor(plan).run({0: 4})
        assert run.query_results[0] == {}
