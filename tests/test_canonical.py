"""Tests for canonicalization, substitution and predicate pushdown."""

import pytest

from repro.logical.builder import PlanBuilder
from repro.mqo.canonical import (
    canonicalize,
    canonicalize_optimized,
    push_down_filters,
    split_conjuncts,
    substitute,
)
from repro.relational.expressions import And, Col, col, agg_sum, agg_count

from .util import batch_reference, make_toy_catalog, assert_plan_correct
from repro.mqo.merge import build_unshared_plan


@pytest.fixture()
def catalog(toy_catalog):
    return toy_catalog


class TestSubstitute:
    def test_replaces_mapped_columns(self):
        expr = col("x") + col("y")
        out = substitute(expr, {"x": col("a") * 2})
        fn = out.compile(__import__("repro.relational.schema", fromlist=["Schema"]).Schema.of("a", "y"))
        assert fn((3, 4)) == 10

    def test_leaves_unmapped_columns(self):
        expr = col("x") > 1
        out = substitute(expr, {"other": col("z")})
        assert out.columns() == {"x"}

    def test_handles_all_node_kinds(self):
        expr = (
            ((col("x") + 1).isin([1, 2]))
            & ~(col("x") < 3)
            | (col("x") == 5)
        )
        out = substitute(expr, {"x": col("y")})
        assert out.columns() == {"y"}


class TestCanonicalize:
    def test_scan_only(self, catalog):
        plan = PlanBuilder.scan(catalog, "items").build()
        node = canonicalize(plan)
        assert node.kind == "scan"
        assert node.filter is None and node.projection is None

    def test_consecutive_selects_merge(self, catalog):
        plan = (
            PlanBuilder.scan(catalog, "items")
            .where(col("price") > 1)
            .where(col("price") < 50)
            .build()
        )
        node = canonicalize(plan)
        assert node.kind == "scan"
        assert isinstance(node.filter, And)

    def test_select_above_project_is_rewritten(self, catalog):
        plan = (
            PlanBuilder.scan(catalog, "items")
            .project([("double", col("price") * 2)])
            .where(col("double") > 10)
            .build()
        )
        node = canonicalize(plan)
        # the predicate must now reference the base column, not the alias
        assert node.filter.columns() == {"price"}
        assert node.projection is not None

    def test_projects_compose(self, catalog):
        plan = (
            PlanBuilder.scan(catalog, "items")
            .project([("d", col("price") * 2)])
            .project([("q", col("d") + 1)])
            .build()
        )
        node = canonicalize(plan)
        assert [alias for alias, _ in node.projection] == ["q"]
        expr = dict(node.projection)["q"]
        assert expr.columns() == {"price"}

    def test_structure_key_ignores_decorations(self, catalog):
        base = PlanBuilder.scan(catalog, "items")
        a = canonicalize(base.where(col("price") > 5).build())
        b = canonicalize(base.project(["item_id"]).build())
        c = canonicalize(base.build())
        assert a.structure_key() == b.structure_key() == c.structure_key()

    def test_join_and_aggregate_structure(self, catalog):
        plan = (
            PlanBuilder.scan(catalog, "events")
            .join(PlanBuilder.scan(catalog, "items"), "ev_item", "item_id")
            .aggregate("item_cat", [agg_sum(col("qty"), "t")])
            .build()
        )
        node = canonicalize(plan)
        assert node.kind == "aggregate"
        assert node.children[0].kind == "join"
        assert [c.kind for c in node.children[0].children] == ["scan", "scan"]


class TestSplitConjuncts:
    def test_flattens_nested_ands(self):
        expr = (col("a") > 1) & (col("b") > 2) & (col("c") > 3)
        assert len(split_conjuncts(expr)) == 3

    def test_or_is_one_conjunct(self):
        expr = (col("a") > 1) | (col("b") > 2)
        assert len(split_conjuncts(expr)) == 1


class TestPushdown:
    def _three_way(self, catalog, predicate):
        return (
            PlanBuilder.scan(catalog, "events")
            .join(PlanBuilder.scan(catalog, "items"), "ev_item", "item_id")
            .join(PlanBuilder.scan(catalog, "categories"), "item_cat", "cat_id")
            .where(predicate)
            .build()
        )

    def test_single_side_conjunct_reaches_scan(self, catalog):
        plan = self._three_way(catalog, col("region") == "EU")
        node = canonicalize_optimized(plan)
        # predicate on categories columns must sit on the categories scan
        scans = [n for n in node.walk() if n.kind == "scan"]
        cat_scan = [n for n in scans if n.payload == "categories"][0]
        assert cat_scan.filter is not None
        assert node.filter is None

    def test_cross_side_conjunct_stays_at_join(self, catalog):
        plan = self._three_way(catalog, col("qty") > col("cat_id"))
        node = canonicalize_optimized(plan)
        assert node.filter is not None

    def test_mixed_conjunction_splits(self, catalog):
        predicate = (col("region") == "EU") & (col("qty") > col("cat_id"))
        plan = self._three_way(catalog, predicate)
        node = canonicalize_optimized(plan)
        assert node.filter is not None  # the cross-side part remains
        scans = [n for n in node.walk() if n.kind == "scan"]
        cat_scan = [n for n in scans if n.payload == "categories"][0]
        assert cat_scan.filter is not None

    def test_group_column_filter_pushes_below_aggregate(self, catalog):
        plan = (
            PlanBuilder.scan(catalog, "events")
            .aggregate(["ev_item"], [agg_sum(col("qty"), "t")])
            .where(col("ev_item") < 10)
            .build()
        )
        node = canonicalize_optimized(plan)
        assert node.filter is None
        assert node.children[0].filter is not None

    def test_aggregate_result_filter_stays(self, catalog):
        plan = (
            PlanBuilder.scan(catalog, "events")
            .aggregate(["ev_item"], [agg_sum(col("qty"), "t")])
            .where(col("t") > 100)
            .build()
        )
        node = canonicalize_optimized(plan)
        assert node.filter is not None

    def test_pushdown_preserves_semantics(self, catalog):
        # run the same query with and without pushdown; results must match
        queries = [
            (
                PlanBuilder.scan(catalog, "events")
                .join(PlanBuilder.scan(catalog, "items"), "ev_item", "item_id")
                .join(PlanBuilder.scan(catalog, "categories"), "item_cat", "cat_id")
                .where((col("region") == "EU") & (col("qty") > 2) & (col("price") < 60))
                .aggregate(["cat_name"], [agg_count("n")])
                .as_query(0, "pushdown_check")
            )
        ]
        reference = batch_reference(catalog, queries)
        plan = build_unshared_plan(catalog, queries)  # uses the optimized path
        assert_plan_correct(plan, queries, reference)
        # and with eager paces
        assert_plan_correct(
            plan, queries, reference, paces={s.sid: 7 for s in plan.subplans}
        )
