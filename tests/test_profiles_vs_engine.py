"""Cross-validation: emission profiles vs the physical engine's buffers.

The cost model's emission profiles predict what a consumer reads from a
child subplan's compacted buffer at each pace.  These tests compare those
predictions against the record counts the physical engine actually
delivers, for both lazy and eager consumers.
"""

import pytest

from repro.cost.memo import PlanCostModel
from repro.cost.model import CostConfig
from repro.engine.calibrate import calibrate_plan
from repro.engine.executor import PlanExecutor
from repro.engine.stream import StreamConfig
from repro.mqo.merge import build_blocking_cut_plan
from repro.physical.operators import SourceExec

from .util import make_toy_catalog, toy_query_max


@pytest.fixture(scope="module")
def chain():
    """A two-subplan chain: SUM-per-key below, MAX above (Q15 shape)."""
    catalog = make_toy_catalog(seed=51, n_events=600)
    query = toy_query_max(catalog, 0)
    plan = build_blocking_cut_plan(catalog, [query])
    config = StreamConfig()
    calibrate_plan(plan, config)
    model = PlanCostModel(plan, CostConfig(state_factor=config.state_factor))
    root = plan.query_roots[0]
    bottom = root.child_subplans()[0]
    return catalog, plan, config, model, root, bottom


def _consumed_records(plan, config, paces, top_sid):
    """Count the delta records the top subplan's source actually scanned."""
    executor = PlanExecutor(plan, config)
    executor.run(paces, collect_results=False)
    unit = executor.compiled[top_sid]

    def find_source(exec_op):
        if isinstance(exec_op, SourceExec):
            return exec_op
        for attr in ("child", "left", "right"):
            child = getattr(exec_op, attr, None)
            if child is not None:
                found = find_source(child)
                if found is not None:
                    return found
        return None

    return find_source(unit.root_exec).scanned_total


class TestProfileVsEngine:
    def test_lazy_consumer_record_counts_match(self, chain):
        catalog, plan, config, model, root, bottom = chain
        paces = {bottom.sid: 12, root.sid: 1}
        evaluation = model.evaluate(paces, collect_inputs=True)
        profile = evaluation.subplan_outputs[bottom.sid]
        predicted = profile.window(1, 1).total
        actual = _consumed_records(plan, config, paces, root.sid)
        assert predicted == pytest.approx(actual, rel=0.35)

    def test_eager_consumer_record_counts_match(self, chain):
        catalog, plan, config, model, root, bottom = chain
        paces = {bottom.sid: 12, root.sid: 12}
        evaluation = model.evaluate(paces, collect_inputs=True)
        profile = evaluation.subplan_outputs[bottom.sid]
        predicted = sum(profile.window(i, 12).total for i in range(1, 13))
        actual = _consumed_records(plan, config, paces, root.sid)
        assert predicted == pytest.approx(actual, rel=0.35)

    def test_lazy_consumer_reads_far_less_than_eager(self, chain):
        catalog, plan, config, model, root, bottom = chain
        lazy = _consumed_records(
            plan, config, {bottom.sid: 12, root.sid: 1}, root.sid
        )
        eager = _consumed_records(
            plan, config, {bottom.sid: 12, root.sid: 12}, root.sid
        )
        assert lazy < eager * 0.7

    def test_profile_reflects_compaction(self, chain):
        catalog, plan, config, model, root, bottom = chain
        paces = {bottom.sid: 12, root.sid: 1}
        evaluation = model.evaluate(paces, collect_inputs=True)
        profile = evaluation.subplan_outputs[bottom.sid]
        lazy_read = profile.window(1, 1).total
        eager_read = sum(profile.window(i, 12).total for i in range(1, 13))
        assert lazy_read < eager_read

    def test_window_totals_sum_consistently(self, chain):
        """Profile windows at the producer's own pace sum to total_stat."""
        catalog, plan, config, model, root, bottom = chain
        evaluation = model.evaluate({bottom.sid: 8, root.sid: 1})
        profile = evaluation.subplan_outputs[bottom.sid]
        summed = sum(profile.window(i, 8).total for i in range(1, 9))
        assert summed == pytest.approx(profile.total_stat().total, rel=1e-6)
