"""Tests for the MQO merge, shared-plan DAG and plan-shape builders."""

import pytest

from repro.errors import PlanError
from repro.logical.builder import PlanBuilder
from repro.mqo.merge import (
    MQOOptimizer,
    build_blocking_cut_plan,
    build_unshared_plan,
)
from repro.mqo.nodes import OpNode, SharedQueryPlan, Subplan, SubplanRef, TableRef
from repro.relational import bitvec
from repro.relational.expressions import agg_avg, agg_count, agg_sum, col
from repro.workloads.tpch import build_pair, generate_catalog

from .util import make_toy_catalog, toy_query_max, toy_query_region, toy_query_total


@pytest.fixture()
def catalog(toy_catalog):
    return toy_catalog


class TestSharedPlanConstruction:
    def test_identical_queries_fully_merge(self, catalog):
        a = toy_query_total(catalog, 0)
        b = toy_query_total(catalog, 1)
        plan = MQOOptimizer(catalog).build_shared_plan([a, b])
        # one fully-shared subplan serving both queries
        assert len(plan.subplans) == 1
        assert plan.subplans[0].query_mask == 0b11
        assert plan.query_roots[0] is plan.query_roots[1]

    def test_partially_overlapping_queries_cut_at_shared_node(self, catalog):
        a = toy_query_total(catalog, 0)
        b = toy_query_region(catalog, 1)
        plan = MQOOptimizer(catalog).build_shared_plan([a, b])
        shared = plan.shared_subplans()
        assert len(shared) == 1
        assert shared[0].query_mask == 0b11
        # the shared join pipeline is consumed by two per-query tops
        assert plan.consumer_count(shared[0]) == 2

    def test_disjoint_queries_do_not_share(self, catalog):
        a = toy_query_total(catalog, 0)
        b = toy_query_max(catalog, 1)
        plan = MQOOptimizer(catalog).build_shared_plan([a, b])
        assert plan.shared_subplans() == []
        assert plan.connected_components() == [[0], [1]]

    def test_paper_pair_shapes_like_figure_2(self):
        tpch = generate_catalog(scale=0.1)
        plan = MQOOptimizer(tpch).build_shared_plan(build_pair(tpch))
        shared = plan.shared_subplans()
        assert len(shared) == 1
        # the shared block is part |X| SUM(lineitem): join over agg over scan
        kinds = sorted(n.kind for n in shared[0].root.walk())
        assert kinds.count("join") == 1
        assert kinds.count("aggregate") == 1
        # Q_B's brand/size selection is a mark on the shared part scan
        marked = [
            n for n in shared[0].root.walk()
            if n.kind == "source" and 1 in n.filters
        ]
        assert marked, "sigma_B* mark missing from the shared subplan"

    def test_duplicate_subtree_within_one_query_becomes_buffer(self, catalog):
        # the same aggregate consumed twice (Q15 shape) must materialize once
        query = toy_query_max(catalog, 0)
        inner = (
            PlanBuilder.scan(catalog, "events")
            .aggregate(["ev_item"], [agg_sum(col("qty"), "item_qty")])
        )
        both = inner.project([("k", col("ev_item")), ("v", col("item_qty"))]).join(
            inner.project([("k2", col("ev_item")), ("v2", col("item_qty"))]),
            "k", "k2",
        ).as_query(0, "self_join")
        plan = MQOOptimizer(catalog).build_shared_plan([both])
        inner_subplans = [
            s for s in plan.subplans if s is not plan.query_roots[0]
        ]
        assert len(inner_subplans) == 1
        assert plan.consumer_count(inner_subplans[0]) >= 1

    def test_projection_conflict_falls_back_to_separate_nodes(self, catalog):
        base = PlanBuilder.scan(catalog, "items")
        a = base.project([("v", col("price") * 2)]).aggregate(
            [], [agg_sum(col("v"), "s")]
        ).as_query(0, "a")
        b = base.project([("v", col("price") * 3)]).aggregate(
            [], [agg_sum(col("v"), "s")]
        ).as_query(1, "b")
        plan = MQOOptimizer(catalog).build_shared_plan([a, b])
        # conflicting alias "v" forces the queries apart; both still valid
        plan.validate()
        assert plan.query_roots[0] is not plan.query_roots[1]


class TestPlanInvariants:
    def test_validate_checks_subsumption(self, catalog):
        a = toy_query_total(catalog, 0)
        b = toy_query_region(catalog, 1)
        plan = MQOOptimizer(catalog).build_shared_plan([a, b])
        shared = plan.shared_subplans()[0]
        shared.query_mask = 0b01  # break subsumption manually
        with pytest.raises(PlanError, match="subsumption"):
            plan.validate()

    def test_topological_order_children_first(self, catalog):
        a = toy_query_total(catalog, 0)
        b = toy_query_region(catalog, 1)
        plan = MQOOptimizer(catalog).build_shared_plan([a, b])
        order = [s.sid for s in plan.topological_order()]
        for subplan in plan.subplans:
            for child in subplan.child_subplans():
                assert order.index(child.sid) < order.index(subplan.sid)

    def test_clone_preserves_structure_and_sids(self, catalog):
        a = toy_query_total(catalog, 0)
        b = toy_query_region(catalog, 1)
        plan = MQOOptimizer(catalog).build_shared_plan([a, b])
        clone = plan.clone()
        assert sorted(s.sid for s in clone.subplans) == sorted(
            s.sid for s in plan.subplans
        )
        assert clone.describe() == plan.describe()
        # deep copy: mutating the clone leaves the original intact
        clone.subplans[0].query_mask = 0
        assert plan.subplans[0].query_mask != 0

    def test_subplans_of_query(self, catalog):
        a = toy_query_total(catalog, 0)
        b = toy_query_region(catalog, 1)
        plan = MQOOptimizer(catalog).build_shared_plan([a, b])
        for qid in (0, 1):
            subplans = plan.subplans_of_query(qid)
            assert all(s.query_mask & (1 << qid) for s in subplans)
            assert plan.query_roots[qid] in subplans

    def test_describe_mentions_every_subplan(self, catalog):
        a = toy_query_total(catalog, 0)
        b = toy_query_region(catalog, 1)
        plan = MQOOptimizer(catalog).build_shared_plan([a, b])
        text = plan.describe()
        for subplan in plan.subplans:
            assert "subplan %d" % subplan.sid in text


class TestBaselinePlanShapes:
    def test_unshared_one_subplan_per_query(self, catalog, toy_queries):
        plan = build_unshared_plan(catalog, toy_queries)
        assert len(plan.subplans) == len(toy_queries)
        for subplan in plan.subplans:
            assert bitvec.popcount(subplan.query_mask) == 1

    def test_blocking_cut_splits_at_aggregates(self, catalog):
        query = toy_query_max(catalog, 0)  # agg over agg
        plan = build_blocking_cut_plan(catalog, [query])
        # inner sum-agg becomes its own subplan below the max-agg root
        assert len(plan.subplans) == 2
        root = plan.query_roots[0]
        children = root.child_subplans()
        assert len(children) == 1
        inner_kinds = [n.kind for n in children[0].root.walk()]
        assert "aggregate" in inner_kinds

    def test_blocking_cut_no_aggregates_single_subplan(self, catalog):
        query = (
            PlanBuilder.scan(catalog, "events")
            .join(PlanBuilder.scan(catalog, "items"), "ev_item", "item_id")
            .aggregate([], [agg_count("n")])
            .as_query(0, "flat")
        )
        plan = build_blocking_cut_plan(catalog, [query])
        # the root aggregate IS the root: one subplan only
        assert len(plan.subplans) == 1


class TestOpNodeBasics:
    def test_union_projection_keeps_identity_for_non_projecting_query(self, catalog):
        items = catalog.get("items")
        node = OpNode(
            "source",
            ref=TableRef("items", items.schema),
            projections={1: (("double", col("price") * 2),)},
            query_mask=0b11,
        )
        names = [alias for alias, _ in node.union_projection()]
        assert names[:3] == ["item_id", "item_cat", "price"]
        assert "double" in names

    def test_union_projection_pure_when_all_project(self, catalog):
        items = catalog.get("items")
        node = OpNode(
            "source",
            ref=TableRef("items", items.schema),
            projections={
                0: (("a", col("price")),),
                1: (("b", col("item_id")),),
            },
            query_mask=0b11,
        )
        names = [alias for alias, _ in node.union_projection()]
        assert names == ["a", "b"]

    def test_conflicting_union_projection_raises(self, catalog):
        items = catalog.get("items")
        node = OpNode(
            "source",
            ref=TableRef("items", items.schema),
            projections={
                0: (("v", col("price")),),
                1: (("v", col("item_id")),),
            },
            query_mask=0b11,
        )
        with pytest.raises(PlanError, match="conflicting"):
            node.union_projection()

    def test_clone_restricts_decorations_and_mask(self, catalog):
        items = catalog.get("items")
        node = OpNode(
            "source",
            ref=TableRef("items", items.schema),
            filters={0: col("price") > 1, 1: col("price") > 2},
            query_mask=0b11,
        )
        restricted = node.clone(keep_queries={1})
        assert list(restricted.filters) == [1]
        assert restricted.query_mask == 0b10
        assert node.query_mask == 0b11
