"""Shared fixtures for the test suite."""

import pytest

from repro.engine.stream import StreamConfig
from repro.workloads.tpch import generate_catalog

from .util import (
    batch_reference,
    make_toy_catalog,
    toy_query_max,
    toy_query_region,
    toy_query_total,
)


@pytest.fixture(scope="session")
def toy_catalog():
    return make_toy_catalog()


@pytest.fixture(scope="session")
def toy_queries(toy_catalog):
    return [
        toy_query_total(toy_catalog, 0),
        toy_query_region(toy_catalog, 1),
        toy_query_max(toy_catalog, 2),
    ]


@pytest.fixture(scope="session")
def toy_reference(toy_catalog, toy_queries):
    return batch_reference(toy_catalog, toy_queries)


@pytest.fixture(scope="session")
def tpch_tiny():
    """A very small TPC-H catalog shared across the suite."""
    return generate_catalog(scale=0.15, seed=5)


@pytest.fixture()
def stream_config():
    return StreamConfig()
