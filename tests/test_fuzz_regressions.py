"""Replay the committed fuzz regression corpus.

Every bug the fuzzer has flushed out leaves its minimized repro in
``tests/fuzz_corpus/`` (see docs/FUZZING.md for the triage workflow).
Replaying them here keeps each fix pinned: a regression flips the
corresponding case back to a failing verdict with a one-line repro
command in the assertion message.
"""

import os

import pytest

from repro.fuzz import replay, replay_command
from repro.fuzz.corpus import iter_corpus

CORPUS_DIR = os.path.join(os.path.dirname(__file__), "fuzz_corpus")

CORPUS = list(iter_corpus(CORPUS_DIR))


def test_corpus_is_present():
    # every bug fixed through the fuzzer must leave its repro here
    assert len(CORPUS) >= 2


@pytest.mark.parametrize(
    "path", [path for path, _ in CORPUS],
    ids=[os.path.splitext(os.path.basename(path))[0] for path, _ in CORPUS],
)
def test_corpus_case_replays_green(path):
    report = replay(path)
    assert report.status == "ok", (
        "regression: corpus case fails again (%s)\n%s"
        % (replay_command(path), report.describe())
    )
