"""API surface checks: exports resolve, docstrings exist, version sane."""

import importlib
import re

import pytest

PACKAGES = [
    "repro",
    "repro.relational",
    "repro.logical",
    "repro.mqo",
    "repro.physical",
    "repro.engine",
    "repro.cost",
    "repro.core",
    "repro.workloads",
    "repro.workloads.tpch",
    "repro.sqlparser",
    "repro.harness",
    "repro.fuzz",
]


class TestExports:
    @pytest.mark.parametrize("name", PACKAGES)
    def test_all_exports_resolve(self, name):
        module = importlib.import_module(name)
        for symbol in getattr(module, "__all__", []):
            assert hasattr(module, symbol), "%s.%s missing" % (name, symbol)

    @pytest.mark.parametrize("name", PACKAGES)
    def test_package_has_docstring(self, name):
        module = importlib.import_module(name)
        assert module.__doc__ and module.__doc__.strip()

    def test_version_is_semver(self):
        import repro

        assert re.fullmatch(r"\d+\.\d+\.\d+", repro.__version__)

    def test_public_classes_documented(self):
        """Every public class/function re-exported at top level has a doc."""
        import repro

        for symbol in repro.__all__:
            obj = getattr(repro, symbol)
            if callable(obj) or isinstance(obj, type):
                assert getattr(obj, "__doc__", None), symbol


class TestRunnerBatch:
    def test_run_all_covers_requested_names(self, toy_catalog):
        from repro.core.optimizer import OptimizerConfig
        from repro.harness.runner import ExperimentRunner

        from .util import toy_query_region, toy_query_total

        queries = [toy_query_total(toy_catalog, 0), toy_query_region(toy_catalog, 1)]
        runner = ExperimentRunner(
            toy_catalog, queries, OptimizerConfig(max_pace=6)
        )
        names = ("NoShare-Uniform", "iShare")
        results = runner.run_all({0: 1.0, 1: 0.5}, names=names)
        assert [r.name for r in results] == list(names)

    def test_variant_names_listed(self):
        from repro.harness.runner import APPROACHES, VARIANTS

        assert "iShare" in APPROACHES
        assert "iShare (w/o unshare)" in VARIANTS
        assert "iShare (Brute-Force)" in VARIANTS
