"""Docs/benchmarks consistency: what the docs promise must exist."""

import os
import re

import pytest

ROOT = os.path.join(os.path.dirname(__file__), os.pardir)


def read(name):
    with open(os.path.join(ROOT, name)) as handle:
        return handle.read()


class TestDocsReferenceRealFiles:
    def test_experiments_md_references_existing_benchmarks(self):
        text = read("EXPERIMENTS.md")
        for match in re.findall(r"benchmarks/(bench_\w+\.py)", text):
            assert os.path.exists(os.path.join(ROOT, "benchmarks", match)), match

    def test_design_md_references_existing_benchmarks(self):
        text = read("DESIGN.md")
        for match in re.findall(r"benchmarks/(bench_\w+\.py)", text):
            assert os.path.exists(os.path.join(ROOT, "benchmarks", match)), match

    def test_every_benchmark_is_documented(self):
        documented = set(
            re.findall(r"(bench_\w+\.py)", read("EXPERIMENTS.md"))
        ) | set(re.findall(r"(bench_\w+\.py)", read("DESIGN.md")))
        actual = {
            name for name in os.listdir(os.path.join(ROOT, "benchmarks"))
            if name.startswith("bench_") and name.endswith(".py")
        }
        assert actual <= documented | {
            # drivers referenced by experiment name rather than filename
            "bench_table1_missed_latency.py",
        }, actual - documented

    def test_readme_examples_exist(self):
        text = read("README.md")
        for match in re.findall(r"examples/(\w+\.py)", text):
            assert os.path.exists(os.path.join(ROOT, "examples", match)), match

    def test_readme_links_resolve(self):
        text = read("README.md")
        for match in re.findall(r"\]\((\w+\.md)\)", text):
            assert os.path.exists(os.path.join(ROOT, match)), match

    def test_glossary_symbols_resolve(self):
        """Module paths named in the glossary must import."""
        import importlib

        text = read(os.path.join("docs", "GLOSSARY.md"))
        for module_name in sorted(set(re.findall(r"`(repro(?:\.\w+)+)`", text))):
            parts = module_name.split(".")
            # try importing progressively; the tail may be a class/function
            for cut in range(len(parts), 0, -1):
                try:
                    module = importlib.import_module(".".join(parts[:cut]))
                    break
                except ImportError:
                    continue
            else:
                pytest.fail("glossary names unimportable %s" % module_name)
            for attr in parts[cut:]:
                assert hasattr(module, attr), (module_name, attr)
                module = getattr(module, attr)


class TestDesignInventoryCoverage:
    def test_every_figure_has_a_driver(self):
        from repro.harness import (
            fig9, fig10, fig11, fig12, fig13, fig14, fig15, fig16, fig17,
            table1,
        )

        for driver in (fig9, fig10, fig11, fig12, fig13, fig14, fig15,
                       fig16, fig17, table1):
            assert callable(driver)
            assert driver.__doc__
