"""Cross-cutting integration tests.

The master invariant: for any plan shape (unshared / blocking-cut /
shared / decomposed) and any legal pace configuration, every query's net
results equal the batch reference.  On top of that, directional
behaviours the paper relies on are checked end to end.
"""

import random

import pytest

from repro.core.optimizer import (
    OptimizerConfig,
    optimize_ishare,
    optimize_noshare_uniform,
    optimize_share_uniform,
    reference_absolute_constraints,
)
from repro.engine.executor import PlanExecutor
from repro.engine.stream import StreamConfig
from repro.mqo.merge import (
    MQOOptimizer,
    build_blocking_cut_plan,
    build_unshared_plan,
)
from repro.workloads.tpch import build_pair, build_workload, generate_catalog

from .util import assert_plan_correct, batch_reference


@pytest.fixture(scope="module")
def tpch_setup(tpch_tiny):
    names = ("Q1", "Q3", "Q6", "Q12", "Q15", "Q18")
    queries = build_workload(tpch_tiny, names)
    reference = batch_reference(tpch_tiny, queries)
    return tpch_tiny, queries, reference


PLAN_BUILDERS = {
    "unshared": build_unshared_plan,
    "blocking": build_blocking_cut_plan,
    "shared": lambda catalog, queries: MQOOptimizer(catalog).build_shared_plan(queries),
}


class TestCrossPlanEquivalence:
    @pytest.mark.parametrize("shape", sorted(PLAN_BUILDERS))
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_random_pace_configurations(self, tpch_setup, shape, seed):
        catalog, queries, reference = tpch_setup
        plan = PLAN_BUILDERS[shape](catalog, queries)
        rng = random.Random(seed)
        paces = {}
        for subplan in plan.topological_order():
            upper = min(
                (paces[c.sid] for c in subplan.child_subplans()), default=12
            )
            paces[subplan.sid] = rng.randint(1, max(1, upper))
        assert_plan_correct(plan, queries, reference, paces=paces)

    def test_all_shapes_agree_on_total_results(self, tpch_setup):
        catalog, queries, reference = tpch_setup
        for shape, builder in PLAN_BUILDERS.items():
            plan = builder(catalog, queries)
            assert_plan_correct(plan, queries, reference)


class TestDirectionalBehaviours:
    def test_sharing_reduces_batch_work(self, tpch_setup):
        catalog, queries, _ = tpch_setup
        unshared = build_unshared_plan(catalog, queries)
        shared = MQOOptimizer(catalog).build_shared_plan(queries)
        u_run = PlanExecutor(unshared).run(
            {s.sid: 1 for s in unshared.subplans}, collect_results=False
        )
        s_run = PlanExecutor(shared).run(
            {s.sid: 1 for s in shared.subplans}, collect_results=False
        )
        assert s_run.total_work < u_run.total_work

    def test_eagerness_monotone_total_work(self, tpch_setup):
        catalog, queries, _ = tpch_setup
        plan = build_unshared_plan(catalog, queries)
        executor = PlanExecutor(plan)
        totals = [
            executor.run({s.sid: pace for s in plan.subplans},
                         collect_results=False).total_work
            for pace in (1, 4, 16, 48)
        ]
        assert totals == sorted(totals)

    def test_q15_final_work_resists_eagerness(self, tpch_tiny):
        """The non-incrementable query: eagerness barely reduces latency."""
        queries = build_workload(tpch_tiny, ("Q15",))
        plan = build_unshared_plan(tpch_tiny, queries)
        executor = PlanExecutor(plan)
        lazy = executor.run({0: 1}, collect_results=False)
        eager = executor.run({0: 48}, collect_results=False)
        incremental_ratio = eager.query_final_work[0] / lazy.query_final_work[0]
        # compare with a fully incrementable query: Q6
        q6 = build_workload(tpch_tiny, ("Q6",))
        q6_plan = build_unshared_plan(tpch_tiny, q6)
        q6_exec = PlanExecutor(q6_plan)
        q6_lazy = q6_exec.run({0: 1}, collect_results=False)
        q6_eager = q6_exec.run({0: 48}, collect_results=False)
        q6_ratio = q6_eager.query_final_work[0] / q6_lazy.query_final_work[0]
        assert q6_ratio < incremental_ratio

    def test_paper_pair_end_to_end(self):
        catalog = generate_catalog(scale=0.25, seed=3)
        queries = build_pair(catalog)
        reference = batch_reference(catalog, queries)
        config = OptimizerConfig(max_pace=24, stream_config=StreamConfig())
        relative = {0: 1.0, 1: 0.2}
        constraints = reference_absolute_constraints(
            catalog, queries, relative, config
        )
        for optimize in (optimize_noshare_uniform, optimize_share_uniform,
                         optimize_ishare):
            result = optimize(catalog, queries, relative, config,
                              absolute_constraints=constraints)
            assert_plan_correct(
                result.plan, queries, reference, paces=result.pace_config,
                stream_config=config.stream_config,
            )

    def test_ishare_unshares_when_sharing_hurts(self):
        """A selective eager query + an unselective lazy one: decompose."""
        from repro.logical.builder import PlanBuilder
        from repro.relational.expressions import agg_sum, col
        from repro.relational.schema import Schema, INT, FLOAT
        from repro.relational.table import Catalog

        rng = random.Random(5)
        catalog = Catalog()
        stream = catalog.create(
            "s", Schema.of(("k", INT), ("v", FLOAT), ("w", INT))
        )
        for _ in range(4000):
            stream.append((rng.randrange(300), float(rng.randint(1, 9)),
                           rng.randrange(1000)))

        def make(qid, name, lo, hi):
            return (
                PlanBuilder.scan(catalog, "s")
                .where((col("w") >= lo) & (col("w") < hi))
                .aggregate(["k"], [agg_sum(col("v"), "t")])
                .aggregate([], [agg_sum(col("t"), "g")])
                .as_query(qid, name)
            )

        queries = [make(0, "broad", 0, 990), make(1, "narrow", 0, 60)]
        config = OptimizerConfig(max_pace=32, stream_config=StreamConfig())
        relative = {0: 1.0, 1: 0.1}
        constraints = reference_absolute_constraints(
            catalog, queries, relative, config
        )
        share = optimize_share_uniform(catalog, queries, relative, config,
                                       absolute_constraints=constraints)
        ishare = optimize_ishare(catalog, queries, relative, config,
                                 absolute_constraints=constraints)
        share_run = PlanExecutor(share.plan, config.stream_config).run(
            share.pace_config, collect_results=False
        )
        ishare_run = PlanExecutor(ishare.plan, config.stream_config).run(
            ishare.pace_config, collect_results=False
        )
        assert ishare_run.total_work < share_run.total_work
        reference = batch_reference(catalog, queries)
        assert_plan_correct(
            ishare.plan, queries, reference, paces=ishare.pace_config,
            stream_config=config.stream_config,
        )
