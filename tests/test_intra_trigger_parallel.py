"""Intra-trigger parallelism: component partition + serial bit-identity.

``repro.engine.parallel`` executes independent subplan components in
worker processes.  The contract is *bit-identity* with the serial
executor at every job count -- query results, total work, every
execution record, subplan final work, metadata (including the
arrangement summary).  These tests pin the partition's structural
invariants and the identity on the fig11-shaped workload for both the
batched and the columnar backend.
"""

import pytest

from repro.engine.executor import PlanExecutor
from repro.engine.parallel import plan_components, run_parallel
from repro.engine.stream import StreamConfig
from repro.errors import ExecutionError
from repro.physical.hotpath import (
    clear_compiled_caches,
    columnar_available,
    engine_mode,
)
from repro.workloads.tpch import (
    ALL_QUERY_NAMES,
    add_lineitem_updates,
    build_workload,
    generate_catalog,
)

from .util import shared_plan_for


@pytest.fixture(scope="module")
def fig11_plan():
    catalog = generate_catalog(scale=0.05, seed=5)
    add_lineitem_updates(catalog, fraction=0.25, seed=11)
    queries = build_workload(catalog, ALL_QUERY_NAMES)
    plan = shared_plan_for(catalog, queries)
    paces = {
        subplan.sid: 1 if subplan.child_subplans() else 3
        for subplan in plan.subplans
    }
    return plan, paces


def _record_tuples(result):
    return [
        (r.sid, r.fraction, r.work, r.latency_work, r.output_count)
        for r in result.records
    ]


def assert_bit_identical(serial, parallel):
    assert parallel.query_results == serial.query_results
    assert parallel.total_work == serial.total_work
    assert parallel.subplan_final_work == serial.subplan_final_work
    assert parallel.subplan_total_work == serial.subplan_total_work
    assert parallel.query_final_work == serial.query_final_work
    assert _record_tuples(parallel) == _record_tuples(serial)
    assert parallel.metadata == serial.metadata


# -- partition structure ---------------------------------------------------------


def test_components_partition_all_subplans(fig11_plan):
    plan, _ = fig11_plan
    components = plan_components(plan)
    seen = [sid for component in components for sid in component]
    assert sorted(seen) == sorted(sp.sid for sp in plan.subplans)
    assert len(seen) == len(set(seen))


def test_components_closed_under_dependencies(fig11_plan):
    plan, _ = fig11_plan
    component_of = {}
    for index, component in enumerate(plan_components(plan)):
        for sid in component:
            component_of[sid] = index
    for subplan in plan.subplans:
        for child in subplan.child_subplans():
            assert component_of[child.sid] == component_of[subplan.sid]


def test_components_in_topological_order(fig11_plan):
    plan, _ = fig11_plan
    position = {
        subplan.sid: index
        for index, subplan in enumerate(plan.topological_order())
    }
    for component in plan_components(plan):
        positions = [position[sid] for sid in component]
        assert positions == sorted(positions)


def test_fig11_plan_actually_splits(fig11_plan):
    # the whole point: the shared TPC-H plan is not one monolith
    plan, _ = fig11_plan
    assert len(plan_components(plan)) > 1


# -- serial identity -------------------------------------------------------------


def _serial_and_parallel(plan, paces, jobs, **mode):
    config = StreamConfig()
    clear_compiled_caches()
    with engine_mode(**mode):
        serial = PlanExecutor(plan, config).run(paces)
        parallel = run_parallel(plan, paces, config, jobs=jobs)
    return serial, parallel


def test_parallel_batched_bit_identical(fig11_plan):
    plan, paces = fig11_plan
    serial, parallel = _serial_and_parallel(plan, paces, jobs=2, batched=True)
    assert_bit_identical(serial, parallel)


@pytest.mark.skipif(not columnar_available(), reason="needs numpy")
def test_parallel_columnar_bit_identical(fig11_plan):
    plan, paces = fig11_plan
    serial, parallel = _serial_and_parallel(
        plan, paces, jobs=2, batched=True, columnar=True
    )
    assert_bit_identical(serial, parallel)


def test_parallel_without_arrangements(fig11_plan):
    plan, paces = fig11_plan
    serial, parallel = _serial_and_parallel(
        plan, paces, jobs=2, batched=True, arrangements=False
    )
    assert_bit_identical(serial, parallel)


def test_jobs_one_is_the_serial_path(fig11_plan):
    plan, paces = fig11_plan
    config = StreamConfig()
    clear_compiled_caches()
    serial = PlanExecutor(plan, config).run(paces)
    again = run_parallel(plan, paces, config, jobs=1)
    assert_bit_identical(serial, again)


def test_parallel_validates_paces_in_driver(fig11_plan):
    plan, _ = fig11_plan
    with pytest.raises(ExecutionError):
        run_parallel(plan, {}, StreamConfig(), jobs=2)


# -- component-restricted executor ----------------------------------------------


def test_only_subset_runs_just_that_component(fig11_plan):
    plan, paces = fig11_plan
    component = plan_components(plan)[-1]
    clear_compiled_caches()
    executor = PlanExecutor(plan, StreamConfig(), only=component)
    result = executor.run(paces)
    assert {r.sid for r in result.records} == set(component)
    full = PlanExecutor(plan, StreamConfig()).run(paces)
    for sid in component:
        assert result.subplan_final_work[sid] == full.subplan_final_work[sid]
    # only the component's query roots are reported
    owned = {
        qid for qid, root in plan.query_roots.items() if root.sid in component
    }
    assert set(result.query_results) == owned
    for qid in owned:
        assert result.query_results[qid] == full.query_results[qid]
