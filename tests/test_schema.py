"""Tests for schemas, columns, tables and the catalog."""

import pytest

from repro.errors import SchemaError
from repro.relational.schema import Column, Schema, INT, FLOAT, STR, DATE
from repro.relational.table import Catalog, Table


class TestColumn:
    def test_basic(self):
        column = Column("price", FLOAT)
        assert column.name == "price"
        assert column.type == FLOAT

    def test_default_type_is_float(self):
        assert Column("x").type == FLOAT

    def test_renamed_keeps_type(self):
        renamed = Column("a", INT).renamed("b")
        assert renamed.name == "b"
        assert renamed.type == INT

    def test_equality_and_hash(self):
        assert Column("a", INT) == Column("a", INT)
        assert Column("a", INT) != Column("a", STR)
        assert hash(Column("a", INT)) == hash(Column("a", INT))

    def test_rejects_empty_name(self):
        with pytest.raises(SchemaError):
            Column("")

    def test_rejects_unknown_type(self):
        with pytest.raises(SchemaError):
            Column("a", "blob")


class TestSchema:
    def test_of_accepts_mixed_specs(self):
        schema = Schema.of(("id", INT), "value", Column("day", DATE))
        assert schema.names() == ("id", "value", "day")
        assert schema.types() == (INT, FLOAT, DATE)

    def test_index_of(self):
        schema = Schema.of("a", "b", "c")
        assert schema.index_of("b") == 1

    def test_index_of_missing_raises(self):
        schema = Schema.of("a")
        with pytest.raises(SchemaError, match="no column 'zz'"):
            schema.index_of("zz")

    def test_has(self):
        schema = Schema.of("a")
        assert schema.has("a")
        assert not schema.has("b")

    def test_duplicate_names_rejected(self):
        with pytest.raises(SchemaError, match="duplicate"):
            Schema.of("a", "a")

    def test_concat(self):
        left = Schema.of("a", "b")
        right = Schema.of("c")
        assert left.concat(right).names() == ("a", "b", "c")

    def test_concat_collision_rejected(self):
        with pytest.raises(SchemaError):
            Schema.of("a").concat(Schema.of("a"))

    def test_project_reorders(self):
        schema = Schema.of("a", "b", "c")
        assert schema.project(["c", "a"]).names() == ("c", "a")

    def test_prefixed(self):
        schema = Schema.of(("id", INT)).prefixed("t_")
        assert schema.names() == ("t_id",)
        assert schema.column("t_id").type == INT

    def test_row_dict(self):
        schema = Schema.of("a", "b")
        assert schema.row_dict((1, 2)) == {"a": 1, "b": 2}

    def test_len_iter_eq(self):
        schema = Schema.of("a", "b")
        assert len(schema) == 2
        assert [c.name for c in schema] == ["a", "b"]
        assert schema == Schema.of("a", "b")
        assert schema != Schema.of("a", ("b", INT))


class TestTable:
    def test_append_and_len(self):
        table = Table("t", Schema.of("a", "b"))
        table.append((1, 2))
        table.extend([(3, 4), (5, 6)])
        assert len(table) == 3
        assert list(table)[0] == (1, 2)

    def test_append_rejects_wrong_arity(self):
        table = Table("t", Schema.of("a"))
        with pytest.raises(SchemaError, match="arity"):
            table.append((1, 2))

    def test_rows_are_tuples(self):
        table = Table("t", Schema.of("a", "b"))
        table.append([1, 2])
        assert table.rows[0] == (1, 2)
        assert isinstance(table.rows[0], tuple)


class TestCatalog:
    def test_create_and_get(self):
        catalog = Catalog()
        table = catalog.create("t", Schema.of("a"))
        assert catalog.get("t") is table
        assert "t" in catalog
        assert catalog.names() == ["t"]

    def test_duplicate_rejected(self):
        catalog = Catalog()
        catalog.create("t", Schema.of("a"))
        with pytest.raises(SchemaError, match="already registered"):
            catalog.create("t", Schema.of("b"))

    def test_get_missing_lists_available(self):
        catalog = Catalog()
        catalog.create("known", Schema.of("a"))
        with pytest.raises(SchemaError, match="known"):
            catalog.get("unknown")

    def test_iteration_and_len(self):
        catalog = Catalog()
        catalog.create("a", Schema.of("x"))
        catalog.create("b", Schema.of("y"))
        assert len(catalog) == 2
        assert {t.name for t in catalog} == {"a", "b"}
