"""Tests for update/delete churn on base-table streams (section 2.3)."""

import random
from fractions import Fraction

import pytest

from repro.engine.executor import PlanExecutor
from repro.engine.stream import TableStream
from repro.errors import SchemaError
from repro.logical.builder import PlanBuilder
from repro.mqo.merge import MQOOptimizer, build_unshared_plan
from repro.relational.expressions import agg_max, col
from repro.relational.schema import Schema, INT, FLOAT
from repro.relational.table import Catalog, Table
from repro.relational.tuples import DELETE, INSERT
from repro.workloads.tpch import (
    add_lineitem_updates,
    build_workload,
    generate_catalog,
)

from .util import assert_plan_correct, batch_reference


class TestTableChurn:
    def _table(self):
        table = Table("t", Schema.of(("k", INT), ("v", FLOAT)))
        table.extend([(1, 1.0), (2, 2.0), (3, 3.0)])
        return table

    def test_default_log_is_pure_inserts(self):
        table = self._table()
        log = table.delta_log()
        assert [sign for _, sign in log] == [INSERT] * 3
        assert table.log_length() == 3
        assert table.delete_count() == 0

    def test_apply_updates_appends_delete_insert_pair(self):
        table = self._table()
        table.apply_updates([((2, 2.0), (2, 20.0))])
        log = table.delta_log()
        assert table.log_length() == 5
        assert table.delete_count() == 1
        assert log[-2] == ((2, 2.0), DELETE)
        assert log[-1] == ((2, 20.0), INSERT)

    def test_apply_updates_randomized_position_after_arrival(self):
        table = self._table()
        table.apply_updates([((1, 1.0), (1, 10.0))], rng=random.Random(3))
        log = table.delta_log()
        arrival = log.index(((1, 1.0), INSERT))
        delete_pos = log.index(((1, 1.0), DELETE))
        assert delete_pos > arrival
        assert log[delete_pos + 1] == ((1, 10.0), INSERT)

    def test_update_of_missing_row_rejected(self):
        table = self._table()
        with pytest.raises(SchemaError, match="not found"):
            table.apply_updates([((9, 9.0), (9, 90.0))])

    def test_stream_replays_churn_log(self):
        table = self._table()
        table.apply_updates([((2, 2.0), (2, 20.0))])
        stream = TableStream(table)
        deltas = stream.deltas_until(Fraction(1))
        assert len(deltas) == 5
        assert sum(1 for d in deltas if d.sign == DELETE) == 1


class TestChurnExecution:
    @pytest.fixture(scope="class")
    def churn_catalog(self):
        catalog = generate_catalog(scale=0.15, seed=6)
        return add_lineitem_updates(catalog, fraction=0.08, seed=2)

    def test_batch_results_reflect_updates(self, churn_catalog):
        clean = generate_catalog(scale=0.15, seed=6)
        queries_clean = build_workload(clean, ("Q1",))
        queries_churn = build_workload(churn_catalog, ("Q1",))
        clean_ref = batch_reference(clean, queries_clean)
        churn_ref = batch_reference(churn_catalog, queries_churn)
        assert clean_ref[0] != churn_ref[0]

    @pytest.mark.parametrize("pace", [1, 3, 7])
    def test_incremental_equals_batch_with_churn_unshared(self, churn_catalog, pace):
        queries = build_workload(churn_catalog, ("Q1", "Q6", "Q18"))
        reference = batch_reference(churn_catalog, queries)
        plan = build_unshared_plan(churn_catalog, queries)
        assert_plan_correct(
            plan, queries, reference,
            paces={s.sid: pace for s in plan.subplans},
        )

    @pytest.mark.parametrize("pace", [1, 5])
    def test_incremental_equals_batch_with_churn_shared(self, churn_catalog, pace):
        queries = build_workload(churn_catalog, ("Q3", "Q5", "Q10"))
        reference = batch_reference(churn_catalog, queries)
        plan = MQOOptimizer(churn_catalog).build_shared_plan(queries)
        assert_plan_correct(
            plan, queries, reference,
            paces={s.sid: pace for s in plan.subplans},
        )

    def test_q15_with_churn_exercises_rescans(self, churn_catalog):
        queries = build_workload(churn_catalog, ("Q15",))
        plan = build_unshared_plan(churn_catalog, queries)
        reference = batch_reference(churn_catalog, queries)
        run = assert_plan_correct(
            plan, queries, reference, paces={0: 10}
        )
        assert run.total_work > 0

    def test_q15_churn_charges_rescan_units(self, churn_catalog):
        # the section 5.3 effect must show up in the work meter itself:
        # deleting the extremum rescans the group's stored value multiset
        queries = build_workload(churn_catalog, ("Q15",))
        plan = build_unshared_plan(churn_catalog, queries)
        executor = PlanExecutor(plan)
        executor.run({0: 10}, collect_results=False)
        rescans = sum(
            unit.meter.rescan_units for unit in executor.compiled.values()
        )
        assert rescans > 0

    def test_cost_model_sees_table_deletes(self, churn_catalog):
        from repro.cost.memo import PlanCostModel
        from repro.engine.calibrate import calibrate_plan

        queries = build_workload(churn_catalog, ("Q1",))
        plan = build_unshared_plan(churn_catalog, queries)
        calibrate_plan(plan)
        model = PlanCostModel(plan)
        profile = model.table_stat("lineitem")
        assert profile.stat.deletes > 0
        assert profile.stat.total == churn_catalog.get("lineitem").log_length()


class TestMinMaxRescanUnderUpdates:
    """Rescan charging through a real aggregate fed an update stream."""

    def _run_max_stream(self, rows, updates):
        catalog = Catalog()
        table = catalog.create("t", Schema.of(("k", INT), ("v", FLOAT)))
        table.extend(rows)
        table.apply_updates(updates)
        builder = PlanBuilder.scan(catalog, "t").aggregate(
            ["k"], [agg_max(col("v"), "hi")]
        )
        queries = [builder.as_query(0, "max_q")]
        plan = build_unshared_plan(catalog, queries)
        executor = PlanExecutor(plan)
        run = executor.run({0: 1})
        rescans = sum(
            unit.meter.rescan_units for unit in executor.compiled.values()
        )
        return run, rescans

    def test_extremum_update_rescans_full_multiset(self):
        rows = [(1, float(v)) for v in range(1, 6)]  # multiset {1..5}
        run, rescans = self._run_max_stream(rows, [((1, 5.0), (1, 0.5))])
        # deleting 5.0 leaves 4 stored values to rescan; re-inserting 0.5
        # then makes it 5 values with max 4.0
        assert rescans == 4
        assert run.query_results[0] == {(1, 4.0): 1}

    def test_duplicate_extremum_update_does_not_rescan(self):
        rows = [(1, 5.0), (1, 5.0), (1, 3.0)]
        run, rescans = self._run_max_stream(rows, [((1, 5.0), (1, 1.0))])
        assert rescans == 0  # another copy of 5.0 still stored
        assert run.query_results[0] == {(1, 5.0): 1}

    def test_non_extremum_update_does_not_rescan(self):
        rows = [(1, float(v)) for v in range(1, 6)]
        run, rescans = self._run_max_stream(rows, [((1, 2.0), (1, 2.5))])
        assert rescans == 0
        assert run.query_results[0] == {(1, 5.0): 1}


class TestAvgStateChurn:
    """Regression: AVG must not accumulate float drift under churn."""

    def _meter(self):
        from repro.physical.work import WorkMeter

        return WorkMeter()

    def test_full_cancellation_returns_exact_zero_state(self):
        from repro.physical.operators import _AvgState

        state = _AvgState()
        meter = self._meter()
        values = [0.1 * i for i in range(1, 401)]
        for value in values:
            state.update(value, INSERT, meter, "avg")
        for value in values:
            state.update(value, DELETE, meter, "avg")
        # the old running float total kept ~1e-12 of residue here; the
        # compensated accumulator must land on exactly zero
        assert state.count == 0
        assert state.total == 0
        assert state.current() is None

    def test_delete_heavy_churn_matches_exact_fraction_average(self):
        from fractions import Fraction

        from repro.physical.operators import _AvgState

        state = _AvgState()
        meter = self._meter()
        rng = random.Random(17)
        live = []
        exact = []
        for _ in range(3000):
            if live and rng.random() < 0.49:
                value = live.pop(rng.randrange(len(live)))
                exact.remove(value)
                state.update(value, DELETE, meter, "avg")
            else:
                value = rng.random() * 10.0 - 5.0
                live.append(value)
                exact.append(value)
                state.update(value, INSERT, meter, "avg")
        expected = float(
            sum(Fraction(v) for v in exact) / len(exact)
        )
        assert state.count == len(exact)
        assert state.current() == pytest.approx(expected, abs=1e-12, rel=1e-12)

    def test_int_inputs_stay_exact_ints(self):
        from repro.physical.operators import _AvgState

        state = _AvgState()
        meter = self._meter()
        for value in (10**15, 7, -(10**15)):
            state.update(value, INSERT, meter, "avg")
        state.update(7, DELETE, meter, "avg")
        assert state.total == 0 and isinstance(state.total, int)
        assert state.count == 2

    def test_avg_query_correct_under_churn(self):
        catalog = generate_catalog(scale=0.12, seed=21)
        add_lineitem_updates(catalog, fraction=0.2, seed=4)
        queries = build_workload(catalog, ("Q1",))  # Q1 carries three AVGs
        reference = batch_reference(catalog, queries)
        plan = build_unshared_plan(catalog, queries)
        assert_plan_correct(
            plan, queries, reference,
            paces={s.sid: 5 for s in plan.subplans},
        )
