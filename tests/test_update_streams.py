"""Tests for update/delete churn on base-table streams (section 2.3)."""

import random
from fractions import Fraction

import pytest

from repro.engine.executor import PlanExecutor
from repro.engine.stream import TableStream
from repro.errors import SchemaError
from repro.mqo.merge import MQOOptimizer, build_unshared_plan
from repro.relational.schema import Schema, INT, FLOAT
from repro.relational.table import Catalog, Table
from repro.relational.tuples import DELETE, INSERT
from repro.workloads.tpch import (
    add_lineitem_updates,
    build_workload,
    generate_catalog,
)

from .util import assert_plan_correct, batch_reference


class TestTableChurn:
    def _table(self):
        table = Table("t", Schema.of(("k", INT), ("v", FLOAT)))
        table.extend([(1, 1.0), (2, 2.0), (3, 3.0)])
        return table

    def test_default_log_is_pure_inserts(self):
        table = self._table()
        log = table.delta_log()
        assert [sign for _, sign in log] == [INSERT] * 3
        assert table.log_length() == 3
        assert table.delete_count() == 0

    def test_apply_updates_appends_delete_insert_pair(self):
        table = self._table()
        table.apply_updates([((2, 2.0), (2, 20.0))])
        log = table.delta_log()
        assert table.log_length() == 5
        assert table.delete_count() == 1
        assert log[-2] == ((2, 2.0), DELETE)
        assert log[-1] == ((2, 20.0), INSERT)

    def test_apply_updates_randomized_position_after_arrival(self):
        table = self._table()
        table.apply_updates([((1, 1.0), (1, 10.0))], rng=random.Random(3))
        log = table.delta_log()
        arrival = log.index(((1, 1.0), INSERT))
        delete_pos = log.index(((1, 1.0), DELETE))
        assert delete_pos > arrival
        assert log[delete_pos + 1] == ((1, 10.0), INSERT)

    def test_update_of_missing_row_rejected(self):
        table = self._table()
        with pytest.raises(SchemaError, match="not found"):
            table.apply_updates([((9, 9.0), (9, 90.0))])

    def test_stream_replays_churn_log(self):
        table = self._table()
        table.apply_updates([((2, 2.0), (2, 20.0))])
        stream = TableStream(table)
        deltas = stream.deltas_until(Fraction(1))
        assert len(deltas) == 5
        assert sum(1 for d in deltas if d.sign == DELETE) == 1


class TestChurnExecution:
    @pytest.fixture(scope="class")
    def churn_catalog(self):
        catalog = generate_catalog(scale=0.15, seed=6)
        return add_lineitem_updates(catalog, fraction=0.08, seed=2)

    def test_batch_results_reflect_updates(self, churn_catalog):
        clean = generate_catalog(scale=0.15, seed=6)
        queries_clean = build_workload(clean, ("Q1",))
        queries_churn = build_workload(churn_catalog, ("Q1",))
        clean_ref = batch_reference(clean, queries_clean)
        churn_ref = batch_reference(churn_catalog, queries_churn)
        assert clean_ref[0] != churn_ref[0]

    @pytest.mark.parametrize("pace", [1, 3, 7])
    def test_incremental_equals_batch_with_churn_unshared(self, churn_catalog, pace):
        queries = build_workload(churn_catalog, ("Q1", "Q6", "Q18"))
        reference = batch_reference(churn_catalog, queries)
        plan = build_unshared_plan(churn_catalog, queries)
        assert_plan_correct(
            plan, queries, reference,
            paces={s.sid: pace for s in plan.subplans},
        )

    @pytest.mark.parametrize("pace", [1, 5])
    def test_incremental_equals_batch_with_churn_shared(self, churn_catalog, pace):
        queries = build_workload(churn_catalog, ("Q3", "Q5", "Q10"))
        reference = batch_reference(churn_catalog, queries)
        plan = MQOOptimizer(churn_catalog).build_shared_plan(queries)
        assert_plan_correct(
            plan, queries, reference,
            paces={s.sid: pace for s in plan.subplans},
        )

    def test_q15_with_churn_exercises_rescans(self, churn_catalog):
        queries = build_workload(churn_catalog, ("Q15",))
        plan = build_unshared_plan(churn_catalog, queries)
        reference = batch_reference(churn_catalog, queries)
        run = assert_plan_correct(
            plan, queries, reference, paces={0: 10}
        )
        assert run.total_work > 0

    def test_cost_model_sees_table_deletes(self, churn_catalog):
        from repro.cost.memo import PlanCostModel
        from repro.engine.calibrate import calibrate_plan

        queries = build_workload(churn_catalog, ("Q1",))
        plan = build_unshared_plan(churn_catalog, queries)
        calibrate_plan(plan)
        model = PlanCostModel(plan)
        profile = model.table_stat("lineitem")
        assert profile.stat.deletes > 0
        assert profile.stat.total == churn_catalog.get("lineitem").log_length()
