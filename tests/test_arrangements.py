"""Shared arrangements: one join index per ``(table, key columns)``.

The tentpole contract (docs/ARRANGEMENTS.md): with arrangements on, N
subplans joining the same base table on the same keys share one index --
resident join-state entries and index-maintenance operations drop by the
number of readers -- while query results, execution records and every
WorkMeter charge stay *bit-identical* to the private-table path.  These
tests pin the exactness contract on both join backends, the resource
wins, the multiversioned copy-on-write protocol, and the satellite fixes
that rode along (columnar join-side compaction, the buffer occupancy
gauge, warm-started selected-pace scans, the cost model's
``arranged_state`` knob).
"""

import random
from fractions import Fraction

import pytest

from repro import obs
from repro.cost.memo import PlanCostModel
from repro.cost.model import CostConfig
from repro.core.split import LocalSplitOptimizer, set_partitions
from repro.engine.arrangements import (
    Arrangement,
    ArrangementStore,
    arrangeable_side,
)
from repro.engine.buffers import Buffer
from repro.engine.calibrate import calibrate_plan
from repro.engine.executor import PlanExecutor
from repro.engine.stream import StreamConfig
from repro.errors import ExecutionError
from repro.logical.builder import PlanBuilder
from repro.mqo.merge import build_unshared_plan
from repro.obs import OBS
from repro.physical.hotpath import (
    clear_compiled_caches,
    columnar_available,
    engine_mode,
)
from repro.relational.expressions import agg_sum, col
from repro.relational.tuples import Delta
from repro.workloads.constraints import uniform_constraints

from .util import make_toy_catalog, shared_plan_for, toy_query_region, toy_query_total


def fingerprint(result):
    """Every numeric surface of a RunResult, exact (no tolerance)."""
    return {
        "total_work": result.total_work,
        "records": [
            (r.sid, r.fraction, r.work, r.latency_work, r.output_count)
            for r in result.records
        ],
        "subplan_total_work": result.subplan_total_work,
        "subplan_final_work": result.subplan_final_work,
        "query_final_work": result.query_final_work,
        "query_results": result.query_results,
    }


def single_join_queries(catalog, n=4):
    """N identical-shape events |X| items rollups, one subplan each.

    ``build_unshared_plan`` keeps them separate, so every subplan probes
    the same two base tables with a private index -- the workload where
    one shared arrangement replaces N private tables.
    """
    return [
        PlanBuilder.scan(catalog, "events")
        .join(PlanBuilder.scan(catalog, "items"), "ev_item", "item_id")
        .aggregate(["item_cat"], [agg_sum(col("qty"), "total")])
        .as_query(i, "arr_q%d" % i)
        for i in range(n)
    ]


def add_event_churn(catalog, fraction=0.2, seed=3):
    """Update-churn on the events table (delete + corrected insert)."""
    rng = random.Random(seed)
    events = catalog.get("events")
    qty = events.schema.index_of("qty")
    updates = []
    for row in rng.sample(events.rows, max(1, int(len(events.rows) * fraction))):
        new_row = list(row)
        new_row[qty] = float(rng.randint(1, 9))
        updates.append((row, tuple(new_row)))
    events.apply_updates(updates, rng=rng)
    return catalog


def run_with(plan, paces, **mode):
    clear_compiled_caches()
    with engine_mode(**mode):
        return PlanExecutor(plan, StreamConfig()).run(paces)


@pytest.fixture(scope="module")
def fanout_setup():
    catalog = make_toy_catalog(seed=13)
    queries = single_join_queries(catalog)
    plan = build_unshared_plan(catalog, queries)
    paces = dict(zip(sorted(s.sid for s in plan.subplans), (1, 2, 4, 4)))
    return plan, paces


# -- exactness: arranged vs private must be bit-identical --------------------------


class TestArrangedExactness:
    def test_batched_paths_bit_identical(self, fanout_setup):
        plan, paces = fanout_setup
        arranged = run_with(plan, paces, batched=True, arrangements=True)
        private = run_with(plan, paces, batched=True, arrangements=False)
        assert arranged.metadata["arrangements"] is True
        assert private.metadata["arrangements"] is False
        assert fingerprint(arranged) == fingerprint(private)

    def test_reference_path_bit_identical(self, fanout_setup):
        plan, paces = fanout_setup
        arranged = run_with(plan, paces, batched=False, arrangements=True)
        private = run_with(plan, paces, batched=False, arrangements=False)
        assert fingerprint(arranged) == fingerprint(private)

    @pytest.mark.skipif(not columnar_available(), reason="requires numpy")
    def test_columnar_paths_bit_identical(self, fanout_setup):
        plan, paces = fanout_setup
        arranged = run_with(plan, paces, columnar=True, arrangements=True)
        private = run_with(plan, paces, columnar=True, arrangements=False)
        assert fingerprint(arranged) == fingerprint(private)

    def test_mixed_shared_plan_bit_identical(self):
        # toy shared plan: filtered scans stay private, bare scans share
        # -- a join can have one arranged and one private side
        catalog = make_toy_catalog(seed=29)
        queries = [
            toy_query_total(catalog, 0),
            toy_query_region(catalog, 1, region="EU"),
            toy_query_total(catalog, 2, day_filter=60),
        ]
        plan = shared_plan_for(catalog, queries)
        paces = {
            s.sid: 2 if s.child_subplans() else 4 for s in plan.subplans
        }
        arranged = run_with(plan, paces, batched=True, arrangements=True)
        private = run_with(plan, paces, batched=True, arrangements=False)
        assert arranged.metadata["arrangements"] is True
        assert fingerprint(arranged) == fingerprint(private)

    def test_churned_workload_bit_identical(self):
        catalog = add_event_churn(make_toy_catalog(seed=17))
        plan = build_unshared_plan(catalog, single_join_queries(catalog))
        paces = dict(zip(sorted(s.sid for s in plan.subplans), (2, 3, 6, 1)))
        arranged = run_with(plan, paces, batched=True, arrangements=True)
        private = run_with(plan, paces, batched=True, arrangements=False)
        assert fingerprint(arranged) == fingerprint(private)


# -- the resource win: >= 2x fewer resident entries and maintenance ops ------------


class TestArrangedSavings:
    def _join_execs(self, root_exec):
        stack, found = [root_exec], []
        while stack:
            node = stack.pop()
            if hasattr(node, "_private_entries"):
                found.append(node)
            for attr in ("left", "right", "child"):
                nxt = getattr(node, attr, None)
                if nxt is not None and hasattr(nxt, "advance"):
                    stack.append(nxt)
        return found

    def test_resident_entries_halved_or_better(self, fanout_setup):
        plan, paces = fanout_setup
        clear_compiled_caches()
        with engine_mode(batched=True, reuse_trees=True, arrangements=False):
            executor = PlanExecutor(plan, StreamConfig())
            executor.run(paces)
            _, _, compiled, _, _ = executor._runtime
            private_resident = sum(
                join.entry_count
                for unit in compiled.values()
                for join in self._join_execs(unit.root_exec)
            )
        arranged = run_with(plan, paces, batched=True, arrangements=True)
        summary = arranged.metadata["arrangement_summary"]
        assert summary["resident_entries"] > 0
        assert private_resident >= 2 * summary["resident_entries"]

    def test_maintenance_ops_halved_or_better(self, fanout_setup):
        plan, paces = fanout_setup
        arranged = run_with(plan, paces, batched=True, arrangements=True)
        summary = arranged.metadata["arrangement_summary"]
        assert summary["maintenance_ops"] > 0
        assert summary["private_ops"] >= 2 * summary["maintenance_ops"]
        assert summary["shared_ops_saved"] == (
            summary["private_ops"] - summary["maintenance_ops"]
        )

    def test_attribution_is_exact_per_arrangement(self, fanout_setup):
        plan, paces = fanout_setup
        arranged = run_with(plan, paces, batched=True, arrangements=True)
        for info in arranged.metadata["arrangement_summary"]["arrangements"]:
            shares = info["attribution"]
            assert len(shares) == info["readers"]
            assert sum(shares.values()) == pytest.approx(
                info["maintenance_ops"]
            )

    def test_kill_switch_disables_sharing(self, fanout_setup):
        plan, paces = fanout_setup
        private = run_with(plan, paces, batched=True, arrangements=False)
        assert private.metadata["arrangements"] is False
        assert "arrangement_summary" not in private.metadata


# -- tree reuse across runs --------------------------------------------------------


class TestTreeReuse:
    def test_reused_tree_matches_fresh(self, fanout_setup):
        plan, paces = fanout_setup
        clear_compiled_caches()
        with engine_mode(batched=True, reuse_trees=True, arrangements=True):
            executor = PlanExecutor(plan, StreamConfig())
            first = fingerprint(executor.run(paces))
            second = fingerprint(executor.run(paces))  # reused tree
            fresh = fingerprint(PlanExecutor(plan, StreamConfig()).run(paces))
        assert first == second == fresh

    def test_toggle_flip_recompiles(self, fanout_setup):
        plan, paces = fanout_setup
        clear_compiled_caches()
        with engine_mode(batched=True, reuse_trees=True):
            executor = PlanExecutor(plan, StreamConfig())
            with engine_mode(arrangements=True):
                assert executor.run(paces).metadata["arrangements"] is True
            with engine_mode(arrangements=False):
                assert executor.run(paces).metadata["arrangements"] is False


# -- the multiversioned copy-on-write protocol, in isolation -----------------------


def _delta(key, payload, sign=1):
    return Delta((key, payload), sign, ~0)


class TestArrangementVersions:
    def _arranged_buffer(self, deltas):
        buffer = Buffer("t")
        buffer.append(deltas)
        return Arrangement("t", (0,), buffer), buffer

    def test_exact_match_shares_a_version(self):
        arr, _ = self._arranged_buffer([_delta(1, "a"), _delta(2, "b")])
        h1, h2 = arr.acquire(0, "j1"), arr.acquire(1, "j2")
        h1.advance_to(2)
        h2.advance_to(2)
        assert len(arr.versions) == 1
        assert h1.version is h2.version
        assert h1.version.refs == 2
        # the second reader paid no maintenance: the version was shared
        assert arr.maintenance_ops == 2
        assert arr.private_ops == 4

    def test_solo_reader_cannibalizes_in_place(self):
        arr, _ = self._arranged_buffer(
            [_delta(1, "a"), _delta(1, "b"), _delta(1, "a", -1)]
        )
        (h,) = [arr.acquire(0, "j1")]
        v1 = h.advance_to(1)
        v2 = h.advance_to(3)
        assert v1 is v2  # rolled forward in place, no copy
        assert len(arr.versions) == 1
        assert h.version.table == {1: {(1, "b"): 1}}
        assert h.version.entries == 1

    def test_lagging_reader_clones_copy_on_write(self):
        arr, _ = self._arranged_buffer(
            [_delta(1, "a"), _delta(2, "b"), _delta(1, "a", -1)]
        )
        h1, h2 = arr.acquire(0, "j1"), arr.acquire(1, "j2")
        h1.advance_to(2)
        h2.advance_to(2)
        shared = h1.version
        h1.advance_to(3)  # must clone: h2 still reads the shared version
        assert h1.version is not shared
        assert shared.table == {1: {(1, "a"): 1}, 2: {(2, "b"): 1}}
        assert h1.version.table == {2: {(2, "b"): 1}}
        assert shared.entries == 2 and h1.version.entries == 1
        assert len(arr.versions) == 2
        # the laggard catches up onto the existing version and the old
        # one is pruned
        h2.advance_to(3)
        assert h2.version is h1.version
        assert len(arr.versions) == 1

    def test_backwards_advance_raises(self):
        arr, _ = self._arranged_buffer([_delta(1, "a"), _delta(2, "b")])
        h = arr.acquire(0, "j1")
        h.advance_to(2)
        with pytest.raises(ExecutionError):
            h.advance_to(1)

    def test_acquire_after_advance_raises(self):
        arr, _ = self._arranged_buffer([_delta(1, "a")])
        h = arr.acquire(0, "j1")
        h.advance_to(1)
        with pytest.raises(ExecutionError):
            arr.acquire(1, "j2")

    def test_reader_pin_blocks_compaction(self):
        arr, buffer = self._arranged_buffer([_delta(1, "a"), _delta(2, "b")])
        consumer = buffer.reader()
        consumer.read_new()
        h1, h2 = arr.acquire(0, "j1"), arr.acquire(1, "j2")
        h1.advance_to(2)
        assert buffer.compact() == 0  # h2's version still needs offset 0
        h2.advance_to(2)
        assert buffer.compact() == 2

    def test_attribution_sums_exactly(self):
        arr, _ = self._arranged_buffer(
            [_delta(k, "p") for k in range(7)]
        )
        h1, h2 = arr.acquire(0, "j1"), arr.acquire(1, "j2")
        h1.advance_to(7)
        h2.advance_to(3)
        shares = arr.attribution()
        assert sum(shares.values(), Fraction(0)) == arr.maintenance_ops
        assert shares[0] > shares[1]  # weighted by advanced span

    def test_reset_restores_pristine_state(self):
        arr, buffer = self._arranged_buffer([_delta(1, "a"), _delta(2, "b")])
        h1, h2 = arr.acquire(0, "j1"), arr.acquire(1, "j2")
        h1.advance_to(2)
        h2.advance_to(1)
        arr.reset()
        assert list(arr.versions) == [0]
        assert arr.versions[0].refs == 2
        assert h1.version is arr.versions[0] is h2.version
        assert arr.maintenance_ops == arr.private_ops == 0
        # the executor resets buffers alongside the store, then the
        # streams re-feed them; a fresh advance sees the replayed log
        buffer.reset()
        buffer.append([_delta(1, "a"), _delta(2, "b")])
        assert h1.advance_to(2).table == {
            1: {(1, "a"): 1}, 2: {(2, "b"): 1}
        }

    def test_store_deduplicates_by_table_and_keys(self):
        store = ArrangementStore()
        buffer = Buffer("t")
        h1 = store.handle("t", (0,), buffer, 0, "j1")
        h2 = store.handle("t", (0,), buffer, 1, "j2")
        h3 = store.handle("t", (1,), buffer, 0, "j3")
        assert h1.arrangement is h2.arrangement
        assert h3.arrangement is not h1.arrangement
        assert len(store) == 2


class TestArrangeableSide:
    def test_bare_scan_sides_are_eligible(self, fanout_setup):
        plan, _ = fanout_setup
        join = next(
            node
            for subplan in plan.subplans
            for node in subplan.root.walk()
            if node.kind == "join"
        )
        assert arrangeable_side(join, 0) == ("events", (0,))
        assert arrangeable_side(join, 1) == ("items", (0,))

    def test_filtered_scan_is_not_eligible(self):
        catalog = make_toy_catalog(seed=31)
        query = toy_query_total(catalog, 0, day_filter=50)
        plan = build_unshared_plan(catalog, [query])
        joins = [
            node
            for node in plan.subplans[0].root.walk()
            if node.kind == "join"
        ]
        for join in joins:
            for side in (0, 1):
                child = join.children[side]
                eligible = arrangeable_side(join, side)
                if child.kind == "source" and child.filters:
                    assert eligible is None
                if child.kind == "join":
                    assert eligible is None


# -- satellite: columnar join-side compaction under churn --------------------------


@pytest.mark.skipif(not columnar_available(), reason="requires numpy")
class TestColumnarSideCompaction:
    def _sides(self, executor):
        _, _, compiled, _, _ = executor._runtime
        for unit in compiled.values():
            stack = [unit.root_exec]
            while stack:
                node = stack.pop()
                for attr in ("_left_state", "_right_state"):
                    state = getattr(node, attr, None)
                    if state is not None:
                        yield state
                for attr in ("left", "right", "child"):
                    nxt = getattr(node, attr, None)
                    if nxt is not None and hasattr(nxt, "advance"):
                        stack.append(nxt)

    def test_dead_slots_stay_bounded(self):
        catalog = add_event_churn(make_toy_catalog(seed=41), fraction=0.6)
        plan = build_unshared_plan(catalog, single_join_queries(catalog, 2))
        paces = {s.sid: 3 for s in plan.subplans}
        clear_compiled_caches()
        with engine_mode(columnar=True, reuse_trees=True, arrangements=False):
            executor = PlanExecutor(plan, StreamConfig())
            run = executor.run(paces)
            sides = list(self._sides(executor))
        assert sides, "no columnar join sides compiled"
        for state in sides:
            # before the fix the raw delta chunks grew without bound;
            # compaction now keeps dead slots below the live count (plus
            # the trigger threshold)
            assert state.dead <= max(32, state.live)
        # compaction preserved per-key probe order: still bit-identical
        # to the batched row path
        batched = run_with(plan, paces, batched=True, arrangements=False)
        assert fingerprint(run) == fingerprint(batched)


# -- satellite: buffer occupancy gauge refreshes on compaction ---------------------


class TestOccupancyGauge:
    @pytest.fixture(autouse=True)
    def _clean_session(self):
        obs.disable()
        yield
        obs.disable()

    def test_compact_refreshes_the_gauge(self):
        obs.enable()
        buffer = Buffer("churny")
        buffer.append([_delta(k, "p") for k in range(10)])
        reader = buffer.reader()
        reader.read_new()
        gauge = OBS.metrics.gauge("engine.buffer.occupancy", buffer="churny")
        assert gauge.value == 10
        assert buffer.compact() == 10
        # the stale-gauge bug: this kept reading 10 after compaction
        assert gauge.value == 0
        assert gauge.max == 10


# -- satellite: warm-started selected-pace scans -----------------------------------


class TestWarmStartedSelectedPace:
    def _splitter(self, **kwargs):
        catalog = make_toy_catalog(seed=23)
        queries = [
            toy_query_total(catalog, 0),
            toy_query_region(catalog, 1, region="EU"),
            toy_query_region(catalog, 2, region="US"),
        ]
        plan = shared_plan_for(catalog, queries)
        calibrate_plan(plan, StreamConfig())
        model = PlanCostModel(plan, CostConfig())
        absolute = model.absolute_constraints(
            uniform_constraints(plan.query_ids(), 0.2)
        )
        target = max(plan.subplans, key=lambda s: len(s.query_ids()))
        assert len(target.query_ids()) >= 2
        paces = {s.sid: 1 for s in plan.subplans}
        inputs = model.evaluate(paces, collect_inputs=True)
        return LocalSplitOptimizer(
            target,
            inputs.subplan_inputs[target.sid],
            model.local_constraints(target, absolute),
            max_pace=12,
            **kwargs,
        )

    def test_verified_warm_start_agrees_with_cold_scan(self):
        # verify_warm_start re-runs every warm scan from pace 1 and
        # raises on divergence -- the monotonicity assertion itself
        verified = self._splitter(verify_warm_start=True)
        decision = verified.brute_force()
        plain = self._splitter()
        assert plain.brute_force().partitions == decision.partitions

    def test_warm_start_saves_simulations(self):
        warm = self._splitter()
        warm_decision = warm.brute_force()

        cold = self._splitter()
        best = None
        for partition_set in set_partitions(cold.queries):
            total = sum(
                cold.selected_pace(part, 1)[1] for part in partition_set
            )
            if best is None or total < best:
                best = total
        assert best == pytest.approx(warm_decision.local_total_work)
        assert warm.simulations <= cold.simulations


# -- satellite: the cost model's arranged_state knob -------------------------------


class TestCostModelArrangedState:
    def _totals(self, **config_kwargs):
        catalog = make_toy_catalog(seed=37)
        plan = build_unshared_plan(catalog, single_join_queries(catalog))
        calibrate_plan(plan, StreamConfig())
        model = PlanCostModel(plan, CostConfig(**config_kwargs))
        paces = {s.sid: 2 for s in plan.subplans}
        return model.evaluate(paces).total_work

    def test_arranged_state_lowers_simulated_state_charge(self):
        default = self._totals(state_factor=0.3)
        arranged = self._totals(state_factor=0.3, arranged_state=True)
        assert arranged < default

    def test_no_state_factor_means_no_difference(self):
        default = self._totals(state_factor=0.0)
        arranged = self._totals(state_factor=0.0, arranged_state=True)
        assert arranged == default

    def test_default_config_keeps_the_knob_off(self):
        assert CostConfig().arranged_state is False
