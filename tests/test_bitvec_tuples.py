"""Tests for bitvectors and delta records, including property tests."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ExecutionError
from repro.relational import bitvec
from repro.relational.schema import Schema
from repro.relational.tuples import DELETE, Delta, DeltaBatch, INSERT, consolidate


class TestBitvec:
    def test_bit(self):
        assert bitvec.bit(0) == 1
        assert bitvec.bit(3) == 8

    def test_bit_rejects_negative(self):
        with pytest.raises(ValueError):
            bitvec.bit(-1)

    def test_mask_of(self):
        assert bitvec.mask_of([0, 2]) == 0b101
        assert bitvec.mask_of([]) == 0

    def test_iter_bits(self):
        assert list(bitvec.iter_bits(0b1011)) == [0, 1, 3]
        assert list(bitvec.iter_bits(0)) == []

    def test_to_ids_roundtrip(self):
        assert bitvec.to_ids(bitvec.mask_of([5, 1, 9])) == (1, 5, 9)

    def test_popcount(self):
        assert bitvec.popcount(0) == 0
        assert bitvec.popcount(0b1110) == 3

    def test_subsumes(self):
        assert bitvec.subsumes(0b111, 0b101)
        assert not bitvec.subsumes(0b101, 0b111)
        assert bitvec.subsumes(0b101, 0)

    def test_format_mask(self):
        assert bitvec.format_mask(0b101) == "{q0,q2}"

    @given(st.sets(st.integers(min_value=0, max_value=40)))
    def test_mask_roundtrip_property(self, ids):
        assert set(bitvec.to_ids(bitvec.mask_of(ids))) == ids

    @given(
        st.sets(st.integers(min_value=0, max_value=20)),
        st.sets(st.integers(min_value=0, max_value=20)),
    )
    def test_subsumes_matches_set_containment(self, outer, inner):
        assert bitvec.subsumes(bitvec.mask_of(outer), bitvec.mask_of(inner)) == (
            inner <= outer
        )


class TestDelta:
    def test_defaults(self):
        delta = Delta((1, 2))
        assert delta.sign == INSERT
        assert delta.bits & 0b1111 == 0b1111  # all-ones default

    def test_invalid_sign(self):
        with pytest.raises(ExecutionError):
            Delta((1,), sign=0)

    def test_with_bits(self):
        delta = Delta((1,), INSERT, 0b11)
        restricted = delta.with_bits(0b01)
        assert restricted.bits == 0b01
        assert restricted.row == (1,)
        assert delta.bits == 0b11  # original untouched

    def test_negated(self):
        assert Delta((1,), INSERT, 1).negated().sign == DELETE
        assert Delta((1,), DELETE, 1).negated().sign == INSERT

    def test_equality(self):
        assert Delta((1,), INSERT, 1) == Delta((1,), INSERT, 1)
        assert Delta((1,), INSERT, 1) != Delta((1,), DELETE, 1)


class TestDeltaBatch:
    def test_inserts_constructor(self):
        schema = Schema.of("a")
        batch = DeltaBatch.inserts(schema, [(1,), (2,)], bits=0b1)
        assert len(batch) == 2
        assert batch.insert_count() == 2
        assert batch.delete_count() == 0

    def test_net_multiplicities_cancels(self):
        schema = Schema.of("a")
        batch = DeltaBatch(schema, [
            Delta((1,), INSERT, 1),
            Delta((1,), DELETE, 1),
            Delta((2,), INSERT, 1),
        ])
        assert batch.net_multiplicities() == {((2,), 1): 1}

    def test_rows_for_query_respects_bits(self):
        schema = Schema.of("a")
        batch = DeltaBatch(schema, [
            Delta((1,), INSERT, 0b01),
            Delta((2,), INSERT, 0b10),
            Delta((3,), INSERT, 0b11),
        ])
        assert batch.rows_for_query(0) == {(1,): 1, (3,): 1}
        assert batch.rows_for_query(1) == {(2,): 1, (3,): 1}


_delta_strategy = st.builds(
    Delta,
    st.tuples(st.integers(min_value=0, max_value=5)),
    st.sampled_from([INSERT, DELETE]),
    st.integers(min_value=1, max_value=7),
)


class TestConsolidate:
    def test_cancels_pairs(self):
        deltas = [Delta((1,), INSERT, 1), Delta((1,), DELETE, 1)]
        assert consolidate(deltas) == []

    def test_keeps_distinct_bits_separate(self):
        deltas = [Delta((1,), INSERT, 0b01), Delta((1,), DELETE, 0b10)]
        assert len(consolidate(deltas)) == 2

    def test_expands_multiplicity(self):
        deltas = [Delta((1,), INSERT, 1)] * 3 + [Delta((1,), DELETE, 1)]
        out = consolidate(deltas)
        assert len(out) == 2
        assert all(d.sign == INSERT for d in out)

    def test_preserves_first_seen_order(self):
        deltas = [Delta((2,), INSERT, 1), Delta((1,), INSERT, 1)]
        assert [d.row for d in consolidate(deltas)] == [(2,), (1,)]

    @given(st.lists(_delta_strategy, max_size=60))
    def test_net_multiplicities_preserved(self, deltas):
        schema = Schema.of("a")
        before = DeltaBatch(schema, deltas).net_multiplicities()
        after = DeltaBatch(schema, consolidate(deltas)).net_multiplicities()
        assert before == after

    @given(st.lists(_delta_strategy, max_size=60))
    def test_output_has_no_cancelling_pairs(self, deltas):
        out = consolidate(deltas)
        signs = {}
        for delta in out:
            key = (delta.row, delta.bits)
            signs.setdefault(key, set()).add(delta.sign)
        assert all(len(s) == 1 for s in signs.values())

    @given(st.lists(_delta_strategy, max_size=60))
    def test_never_longer_than_input(self, deltas):
        assert len(consolidate(deltas)) <= len(deltas)
