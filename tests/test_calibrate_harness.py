"""Tests for calibration statistics and the experiment harness."""

import pytest

from repro.core.optimizer import OptimizerConfig
from repro.engine.calibrate import calibrate_plan
from repro.engine.stream import StreamConfig
from repro.harness.report import MISSED_HEADERS, format_table, missed_latency_row
from repro.harness.runner import APPROACHES, ExperimentRunner
from repro.engine.metrics import MissedLatencySummary
from repro.mqo.merge import MQOOptimizer, build_unshared_plan

from .util import make_toy_catalog, toy_query_region, toy_query_total


@pytest.fixture(scope="module")
def calibrated():
    catalog = make_toy_catalog(seed=17)
    queries = [toy_query_total(catalog, 0), toy_query_region(catalog, 1)]
    plan = MQOOptimizer(catalog).build_shared_plan(queries)
    config = StreamConfig()
    result = calibrate_plan(plan, config)
    return catalog, queries, plan, result


class TestCalibration:
    def test_every_node_gets_stats(self, calibrated):
        _, _, plan, _ = calibrated
        for subplan in plan.subplans:
            for node in subplan.root.walk():
                assert node.stats is not None, node

    def test_source_stats_count_table_rows(self, calibrated):
        catalog, _, plan, _ = calibrated
        for subplan in plan.subplans:
            for node in subplan.root.walk():
                if node.kind == "source" and hasattr(node.ref, "name"):
                    assert node.stats.scanned_total == len(
                        catalog.get(node.ref.name)
                    )

    def test_filter_selectivities_in_unit_range(self, calibrated):
        _, _, plan, _ = calibrated
        for subplan in plan.subplans:
            for node in subplan.root.walk():
                for sel in node.stats.filter_sel_per_q.values():
                    assert 0.0 <= sel <= 1.0

    def test_join_stats_consistent(self, calibrated):
        _, _, plan, _ = calibrated
        for subplan in plan.subplans:
            for node in subplan.root.walk():
                if node.kind == "join":
                    stats = node.stats
                    assert stats.in_left > 0 and stats.in_right > 0
                    assert stats.join_out >= 0
                    for qid, card in stats.join_out_per_q.items():
                        assert card <= stats.join_out + 1e-9

    def test_aggregate_group_counts(self, calibrated):
        _, _, plan, _ = calibrated
        for subplan in plan.subplans:
            for node in subplan.root.walk():
                if node.kind == "aggregate":
                    stats = node.stats
                    assert stats.groups_union >= 1
                    for qid, groups in stats.groups_per_q.items():
                        assert groups <= stats.groups_union

    def test_batch_work_per_query_positive(self, calibrated):
        _, queries, _, result = calibrated
        for query in queries:
            assert result.query_batch_work[query.query_id] > 0
            assert result.query_batch_latency[query.query_id] > 0

    def test_calibration_is_batch_run(self, calibrated):
        _, _, _, result = calibrated
        assert all(record.fraction == 1 for record in result.run.records)


class TestReportFormatting:
    def test_format_table_aligns(self):
        text = format_table(("A", "Bee"), [["x", 1.0], ["longer", 2345.678]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert len(set(len(line.rstrip()) for line in lines[1:2])) == 1

    def test_format_table_title(self):
        text = format_table(("A",), [["x"]], title="My title")
        assert text.splitlines()[0] == "My title"

    def test_float_rendering(self):
        text = format_table(("A",), [[1234.5678], [0.125]])
        assert "1235" in text  # large floats rounded to integers
        assert "0.12" in text or "0.13" in text

    def test_missed_latency_row(self):
        summary = MissedLatencySummary()
        summary.add(12.0, 10.0)
        row = missed_latency_row("X", summary)
        assert row[0] == "X"
        assert len(row) == len(MISSED_HEADERS)


class TestExperimentRunner:
    @pytest.fixture(scope="class")
    def runner(self):
        catalog = make_toy_catalog(seed=23)
        queries = [toy_query_total(catalog, 0), toy_query_region(catalog, 1)]
        config = OptimizerConfig(max_pace=12, stream_config=StreamConfig())
        return ExperimentRunner(catalog, queries, config)

    def test_batch_latencies_cached(self, runner):
        first = runner.batch_latencies()
        assert runner.batch_latencies() is first
        assert all(value > 0 for value in first.values())

    def test_latency_goals_scale_batch(self, runner):
        relative = {0: 0.5, 1: 1.0}
        goals = runner.latency_goals(relative)
        latencies = runner.batch_latencies()
        assert goals[0] == pytest.approx(0.5 * latencies[0])
        assert goals[1] == pytest.approx(latencies[1])

    def test_constraints_cached_per_level(self, runner):
        a = runner.absolute_constraints({0: 0.5, 1: 0.5})
        b = runner.absolute_constraints({0: 0.5, 1: 0.5})
        c = runner.absolute_constraints({0: 0.2, 1: 0.2})
        assert a is b
        assert c is not a

    @pytest.mark.parametrize("name", APPROACHES)
    def test_every_approach_runs(self, runner, name):
        result = runner.run_approach(name, {0: 1.0, 1: 0.5})
        assert result.total_seconds > 0
        assert result.missed.row()[0] >= 0

    def test_unknown_approach_rejected(self, runner):
        with pytest.raises(ValueError, match="unknown approach"):
            runner.run_approach("MagicShare", {0: 1.0, 1: 1.0})

    def test_pace_override(self, runner):
        result = runner.run_approach(
            "NoShare-Uniform", {0: 1.0, 1: 1.0},
            pace_override=None,
        )
        plan = result.optimization.plan
        override = {s.sid: 2 for s in plan.subplans}
        forced = runner.run_approach(
            "NoShare-Uniform", {0: 1.0, 1: 1.0}, pace_override=override
        )
        assert forced.run.pace_config == override

    def test_variant_approaches_resolve(self, runner):
        without = runner.run_approach("iShare (w/o unshare)", {0: 1.0, 1: 1.0})
        assert without.optimization.approach == "iShare (w/o unshare)"


class TestOptimizerConfigReplace:
    def test_override_single_field(self):
        base = OptimizerConfig(max_pace=12)
        clone = base.replace(max_pace=4)
        assert clone.max_pace == 4
        assert base.max_pace == 12  # original untouched
        assert clone is not base

    def test_unmentioned_fields_carry_over(self):
        stream = StreamConfig(work_rate=500.0)
        base = OptimizerConfig(max_pace=8, stream_config=stream)
        clone = base.replace(max_pace=3)
        assert clone.stream_config is stream
        for name, value in base.__dict__.items():
            if name != "max_pace":
                assert clone.__dict__[name] == value

    def test_no_overrides_returns_equal_copy(self):
        base = OptimizerConfig()
        clone = base.replace()
        assert clone is not base
        assert clone.__dict__ == base.__dict__

    def test_unknown_field_rejected(self):
        with pytest.raises(TypeError, match="unknown OptimizerConfig field"):
            OptimizerConfig().replace(turbo_mode=True)
