"""Tests for the cost model: statistics, profiles, simulation, memoization."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.cost.memo import OptimizationTimeout, PlanCostModel
from repro.cost.model import (
    CollapsingProfile,
    CostConfig,
    LedgerProfile,
    UniformProfile,
    emissions,
    expected_touched,
    simulate_subplan,
)
from repro.cost.stats import EdgeStat, NodeStats, union_estimate
from repro.engine.calibrate import calibrate_plan
from repro.engine.executor import PlanExecutor
from repro.engine.stream import StreamConfig
from repro.errors import CostModelError
from repro.mqo.merge import MQOOptimizer, build_unshared_plan

from .util import make_toy_catalog, toy_query_region, toy_query_total


class TestExpectedTouched:
    def test_zero_cases(self):
        assert expected_touched(0, 10) == 0.0
        assert expected_touched(10, 0) == 0.0

    def test_single_bin(self):
        assert expected_touched(1, 5) == 1.0
        assert expected_touched(1, 0.5) == 0.5

    def test_small_n_approx_n(self):
        assert expected_touched(10_000, 5) == pytest.approx(5, rel=0.01)

    def test_large_n_saturates(self):
        assert expected_touched(10, 10_000) == pytest.approx(10, rel=1e-6)

    @given(
        st.floats(min_value=1, max_value=1e6),
        st.floats(min_value=0, max_value=1e6),
    )
    def test_bounds_property(self, universe, n):
        touched = expected_touched(universe, n)
        # the <= n half of the bound only holds for whole balls (n >= 1)
        assert 0.0 <= touched <= min(universe, max(n, 1.0)) + 1e-6

    @given(
        st.floats(min_value=1, max_value=1e4),
        st.floats(min_value=0, max_value=1e4),
        st.floats(min_value=0, max_value=1e4),
    )
    def test_monotone_in_n(self, universe, n1, n2):
        lo, hi = sorted((n1, n2))
        assert expected_touched(universe, lo) <= expected_touched(universe, hi) + 1e-9


class TestEmissions:
    def test_first_batch_only_inserts(self):
        emitted, retracted = emissions(100, 0, 10)
        assert retracted == pytest.approx(0.0, abs=1e-6)
        assert emitted == pytest.approx(expected_touched(100, 10), rel=1e-6)

    def test_warm_state_retracts(self):
        emitted, retracted = emissions(10, 1000, 50)
        # all groups materialized: every touch is retract + insert
        assert retracted == pytest.approx(10, rel=0.01)
        assert emitted == pytest.approx(20, rel=0.01)

    def test_zero_input(self):
        assert emissions(10, 5, 0) == (0.0, 0.0)

    @given(
        st.floats(min_value=1, max_value=1e4),
        st.floats(min_value=0, max_value=1e4),
        st.floats(min_value=0, max_value=1e4),
    )
    def test_emitted_bounds(self, universe, seen, n):
        emitted, retracted = emissions(universe, seen, n)
        assert 0 <= retracted <= universe + 1e-6
        # the <= 2n half of the bound only holds for whole records (n >= 1)
        assert emitted <= 2 * min(universe, max(n, 1.0)) + 1e-6


class TestUnionEstimate:
    def test_empty(self):
        assert union_estimate(100, []) == 0.0
        assert union_estimate(0, [5]) == 0.0

    def test_single_subset(self):
        assert union_estimate(100, [30]) == pytest.approx(30)

    def test_never_below_max_nor_above_sum(self):
        union = union_estimate(100, [60, 50])
        assert 60 <= union <= 100
        union = union_estimate(1000, [5, 5])
        assert 5 <= union <= 10

    @given(
        st.floats(min_value=1, max_value=1e5),
        st.lists(st.floats(min_value=0, max_value=1e5), max_size=6),
    )
    def test_bounds_property(self, total, cards):
        union = union_estimate(total, cards)
        capped = [min(max(c, 0.0), total) for c in cards]
        assert union <= total + 1e-6
        assert union >= max(capped, default=0.0) - 1e-6
        if capped:
            assert union <= sum(capped) + 1e-6


class TestEdgeStat:
    def test_scaled(self):
        stat = EdgeStat(100, 10, {0: 50})
        half = stat.scaled(0.5)
        assert half.total == 50 and half.deletes == 5 and half.per_q[0] == 25

    def test_uniform_query_card(self):
        stat = EdgeStat(100, 0, uniform=True)
        assert stat.query_card(7) == 100

    def test_restricted_uniform(self):
        stat = EdgeStat(100, 0, uniform=True)
        restricted = stat.restricted([0, 3])
        assert restricted.total == 100
        assert restricted.per_q == {0: 100.0, 3: 100.0}

    def test_restricted_union_is_bounded(self):
        stat = EdgeStat(100, 0, {0: 60, 1: 60})
        restricted = stat.restricted([0, 1])
        assert 60 <= restricted.total <= 100

    def test_restricted_empty(self):
        stat = EdgeStat(100, 0, {0: 60})
        assert stat.restricted([]).total == 0.0

    def test_net_accounts_for_cancellation(self):
        stat = EdgeStat(100, 30)
        assert stat.net() == pytest.approx(40)
        assert stat.insert_count() == pytest.approx(70)

    def test_add_accumulates(self):
        stat = EdgeStat()
        stat.add(EdgeStat(10, 1, {0: 5}))
        stat.add(EdgeStat(20, 2, {0: 5, 1: 5}))
        assert stat.total == 30 and stat.deletes == 3
        assert stat.per_q == {0: 10, 1: 5}


class TestProfiles:
    def test_uniform_windows_partition_total(self):
        profile = UniformProfile(EdgeStat(100, 10, {0: 40}), granularity=None)
        acc = EdgeStat()
        for index in range(1, 5):
            acc.add(profile.window(index, 4))
        assert acc.total == pytest.approx(100)
        assert acc.deletes == pytest.approx(10)
        assert acc.per_q[0] == pytest.approx(40)

    def test_ledger_windows_sum_producer_execs(self):
        stats = [EdgeStat(10), EdgeStat(20), EdgeStat(30), EdgeStat(40)]
        profile = LedgerProfile(stats, granularity=4)
        # consumer at pace 2 sees [10+20, 30+40]
        assert profile.window(1, 2).total == pytest.approx(30)
        assert profile.window(2, 2).total == pytest.approx(70)
        # consumer eagerer than producer sees empty gap windows
        assert profile.window(1, 8).total == 0.0
        assert profile.window(2, 8).total == pytest.approx(10)

    def test_ledger_total(self):
        profile = LedgerProfile([EdgeStat(10), EdgeStat(5)], granularity=2)
        assert profile.total_stat().total == pytest.approx(15)

    def test_collapsing_lazy_consumer_sees_fewer_records(self):
        # 200 inputs over 10 producer executions into 20 groups
        series = [20.0 * i for i in range(11)]
        profile = CollapsingProfile(
            universe=20, series=series, per_q={0: (20, series)},
            scale_total=1.0, scale_per_q={0: 1.0}, granularity=10,
        )
        eager = sum(profile.window(i, 10).total for i in range(1, 11))
        lazy = profile.window(1, 1).total
        assert lazy < eager
        # a one-batch consumer sees at most one insert per group
        assert lazy <= 20 + 1e-6

    def test_collapsing_batch_consumer_sees_no_deletes(self):
        series = [30.0 * i for i in range(7)]
        profile = CollapsingProfile(
            universe=15, series=series, per_q={},
            scale_total=1.0, scale_per_q={}, granularity=6,
        )
        assert profile.window(1, 1).deletes == pytest.approx(0.0, abs=1e-6)


@pytest.fixture(scope="module")
def calibrated_toy():
    catalog = make_toy_catalog()
    queries = [toy_query_total(catalog, 0), toy_query_region(catalog, 1)]
    plan = MQOOptimizer(catalog).build_shared_plan(queries)
    config = StreamConfig()
    calibrate_plan(plan, config)
    return catalog, queries, plan, config


class TestSimulationFidelity:
    def test_pace1_estimate_matches_measurement(self, calibrated_toy):
        catalog, queries, plan, config = calibrated_toy
        model = PlanCostModel(plan, CostConfig(state_factor=config.state_factor))
        paces = {s.sid: 1 for s in plan.subplans}
        estimate = model.evaluate(paces)
        measured = PlanExecutor(plan, config).run(paces, collect_results=False)
        assert estimate.total_work == pytest.approx(measured.total_work, rel=0.02)
        for qid in (0, 1):
            assert estimate.query_final_work[qid] == pytest.approx(
                measured.query_final_work[qid], rel=0.05
            )

    @pytest.mark.parametrize("pace", [4, 10])
    def test_eager_estimates_track_measurements(self, calibrated_toy, pace):
        catalog, queries, plan, config = calibrated_toy
        model = PlanCostModel(plan, CostConfig(state_factor=config.state_factor))
        paces = {s.sid: pace for s in plan.subplans}
        estimate = model.evaluate(paces)
        measured = PlanExecutor(plan, config).run(paces, collect_results=False)
        assert estimate.total_work == pytest.approx(measured.total_work, rel=0.25)

    def test_estimated_total_grows_with_pace(self, calibrated_toy):
        _, _, plan, config = calibrated_toy
        model = PlanCostModel(plan, CostConfig(state_factor=config.state_factor))
        totals = [
            model.evaluate({s.sid: pace for s in plan.subplans}).total_work
            for pace in (1, 4, 16)
        ]
        assert totals[0] < totals[1] < totals[2]

    def test_estimated_final_shrinks_with_pace(self, calibrated_toy):
        _, _, plan, config = calibrated_toy
        model = PlanCostModel(plan, CostConfig(state_factor=config.state_factor))
        finals = [
            sum(model.evaluate({s.sid: pace for s in plan.subplans}).query_final_work.values())
            for pace in (1, 4, 16)
        ]
        assert finals[0] > finals[1] > finals[2]


class TestMemoization:
    def test_memo_and_no_memo_agree(self, calibrated_toy):
        _, _, plan, config = calibrated_toy
        cost_config = CostConfig(state_factor=config.state_factor)
        with_memo = PlanCostModel(plan, cost_config, use_memo=True)
        without = PlanCostModel(plan, cost_config, use_memo=False)
        for paces in (
            {s.sid: 1 for s in plan.subplans},
            {s.sid: 5 for s in plan.subplans},
        ):
            a = with_memo.evaluate(paces)
            b = without.evaluate(paces)
            assert a.total_work == pytest.approx(b.total_work)
            assert a.query_final_work == b.query_final_work

    def test_memo_avoids_resimulation(self, calibrated_toy):
        _, _, plan, config = calibrated_toy
        model = PlanCostModel(plan, CostConfig(state_factor=config.state_factor))
        paces = {s.sid: 3 for s in plan.subplans}
        model.evaluate(paces)
        count = model.simulation_count
        model.evaluate(paces)
        assert model.simulation_count == count

    def test_memo_key_is_private_pace_config(self, calibrated_toy):
        _, _, plan, config = calibrated_toy
        model = PlanCostModel(plan, CostConfig(state_factor=config.state_factor))
        shared = plan.shared_subplans()[0]
        parents = plan.parents_of(shared)
        base = {s.sid: 2 for s in plan.subplans}
        model.evaluate(base)
        count = model.simulation_count
        # changing only a parent's pace must not re-simulate the child
        changed = dict(base)
        changed[parents[0].sid] = 1
        model.evaluate(changed)
        assert model.simulation_count == count + 1

    def test_timeout_raises(self, calibrated_toy):
        _, _, plan, config = calibrated_toy
        model = PlanCostModel(
            plan, CostConfig(state_factor=config.state_factor),
            use_memo=False, time_budget=-1.0,
        )
        model._deadline = -math.inf
        with pytest.raises(OptimizationTimeout):
            model.evaluate({s.sid: 1 for s in plan.subplans})

    def test_uncalibrated_plan_raises(self):
        catalog = make_toy_catalog(seed=99)
        queries = [toy_query_region(catalog, 0)]
        plan = MQOOptimizer(catalog).build_shared_plan(queries)
        model = PlanCostModel(plan)
        with pytest.raises(CostModelError, match="statistics"):
            model.evaluate({s.sid: 1 for s in plan.subplans})


class TestSoloAndLocal:
    def test_solo_batch_sums_query_subplans(self, calibrated_toy):
        _, queries, plan, config = calibrated_toy
        model = PlanCostModel(plan, CostConfig(state_factor=config.state_factor))
        total, per_subplan = model.solo_batch(0)
        assert total == pytest.approx(sum(per_subplan.values()))
        assert set(per_subplan) == {
            s.sid for s in plan.subplans_of_query(0)
        }

    def test_absolute_constraints_scale_solo(self, calibrated_toy):
        _, _, plan, config = calibrated_toy
        model = PlanCostModel(plan, CostConfig(state_factor=config.state_factor))
        absolute = model.absolute_constraints({0: 0.5, 1: 1.0})
        assert absolute[0] == pytest.approx(model.solo_batch(0)[0] * 0.5)
        assert absolute[1] == pytest.approx(model.solo_batch(1)[0])

    def test_local_constraints_fractions(self, calibrated_toy):
        _, _, plan, config = calibrated_toy
        model = PlanCostModel(plan, CostConfig(state_factor=config.state_factor))
        absolute = model.absolute_constraints({0: 1.0, 1: 1.0})
        shared = plan.shared_subplans()[0]
        local = model.local_constraints(shared, absolute)
        for qid, bound in local.items():
            assert 0 < bound <= absolute[qid]

    def test_solo_estimates_match_solo_measurement(self, calibrated_toy):
        catalog, queries, plan, config = calibrated_toy
        model = PlanCostModel(plan, CostConfig(state_factor=config.state_factor))
        solo_plan = build_unshared_plan(catalog, queries)
        measured = PlanExecutor(solo_plan, config).run(
            {s.sid: 1 for s in solo_plan.subplans}, collect_results=False
        )
        for qid in (0, 1):
            estimate, _ = model.solo_batch(qid)
            assert estimate == pytest.approx(
                measured.query_final_work[qid], rel=0.35
            )
