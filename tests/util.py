"""Shared test helpers: tiny workloads and cross-plan result checks."""

import random

from repro.engine.calibrate import calibrate_plan
from repro.engine.compare import assert_results_close
from repro.engine.executor import PlanExecutor
from repro.engine.stream import StreamConfig
from repro.logical.builder import PlanBuilder
from repro.mqo.merge import MQOOptimizer, build_unshared_plan
from repro.relational.expressions import agg_avg, agg_count, agg_max, agg_sum, col
from repro.relational.schema import Schema, INT, FLOAT, STR
from repro.relational.table import Catalog


def make_toy_catalog(seed=13, n_categories=12, n_items=60, n_events=900):
    """A 3-table star: categories <- items <- events."""
    rng = random.Random(seed)
    catalog = Catalog()
    categories = catalog.create(
        "categories", Schema.of(("cat_id", INT), ("cat_name", STR), ("region", STR))
    )
    for cid in range(n_categories):
        categories.append((cid, "cat%d" % cid, rng.choice(["EU", "US", "APAC"])))
    items = catalog.create(
        "items", Schema.of(("item_id", INT), ("item_cat", INT), ("price", FLOAT))
    )
    for iid in range(n_items):
        items.append((iid, rng.randrange(n_categories), float(rng.randint(1, 100))))
    events = catalog.create(
        "events",
        Schema.of(("ev_item", INT), ("qty", FLOAT), ("day", INT), ("kind", STR)),
    )
    for _ in range(n_events):
        events.append((
            rng.randrange(n_items),
            float(rng.randint(1, 9)),
            rng.randrange(100),
            rng.choice(["view", "buy", "ship"]),
        ))
    return catalog


def toy_query_total(catalog, query_id=0, day_filter=None):
    """SUM(qty) per category over events |X| items |X| categories."""
    events = PlanBuilder.scan(catalog, "events")
    if day_filter is not None:
        events = events.where(col("day") < day_filter)
    return (
        events
        .join(PlanBuilder.scan(catalog, "items"), "ev_item", "item_id")
        .join(PlanBuilder.scan(catalog, "categories"), "item_cat", "cat_id")
        .aggregate(["cat_name"], [agg_sum(col("qty"), "total_qty")])
        .as_query(query_id, "toy_total_%d" % query_id)
    )


def toy_query_region(catalog, query_id=1, region="EU"):
    """Same join chain, filtered to one region, counting events."""
    return (
        PlanBuilder.scan(catalog, "events")
        .join(PlanBuilder.scan(catalog, "items"), "ev_item", "item_id")
        .join(PlanBuilder.scan(catalog, "categories"), "item_cat", "cat_id")
        .where(col("region") == region)
        .aggregate(["cat_name"], [agg_count("n_events"), agg_avg(col("qty"), "avg_qty")])
        .as_query(query_id, "toy_region_%d" % query_id)
    )


def toy_query_max(catalog, query_id=2):
    """Two-level aggregate with a MAX on top (Q15-shaped)."""
    return (
        PlanBuilder.scan(catalog, "events")
        .aggregate(["ev_item"], [agg_sum(col("qty"), "item_qty")])
        .aggregate([], [agg_max(col("item_qty"), "max_qty")])
        .as_query(query_id, "toy_max_%d" % query_id)
    )


def batch_reference(catalog, queries, stream_config=None):
    """Reference results: each query separately, one batch."""
    plan = build_unshared_plan(catalog, queries)
    run = PlanExecutor(plan, stream_config).run({s.sid: 1 for s in plan.subplans})
    return {q.query_id: run.query_results[q.query_id] for q in queries}


def assert_plan_correct(plan, queries, reference, paces=None, stream_config=None):
    """Execute ``plan`` and require every query's results match ``reference``."""
    if paces is None:
        paces = {s.sid: 1 for s in plan.subplans}
    run = PlanExecutor(plan, stream_config).run(paces)
    for query in queries:
        assert_results_close(
            run.query_results[query.query_id],
            reference[query.query_id],
            context="%s paces=%s" % (query.name, sorted(set(paces.values()))),
        )
    return run


def shared_plan_for(catalog, queries):
    return MQOOptimizer(catalog).build_shared_plan(queries)


def calibrated_shared_plan(catalog, queries, stream_config=None):
    plan = shared_plan_for(catalog, queries)
    calibrate_plan(plan, stream_config or StreamConfig())
    return plan
