"""Tests for statistics perturbation, window quantization and TPC-H shapes."""

import pytest

from repro.cost.model import _window_bounds
from repro.cost.stats import perturb_stats
from repro.engine.calibrate import calibrate_plan
from repro.engine.stream import StreamConfig
from repro.mqo.canonical import canonicalize
from repro.mqo.merge import MQOOptimizer, build_unshared_plan
from repro.workloads.tpch import build_query, generate_catalog

from .util import make_toy_catalog, toy_query_region, toy_query_total


class TestWindowBounds:
    def test_continuous_stream_uniform(self):
        assert _window_bounds(1, 4, None) == (0.0, 0.25)
        assert _window_bounds(4, 4, None) == (0.75, 1.0)

    def test_quantized_to_producer_grid(self):
        # producer at granularity 3, consumer at pace 2: windows snap to
        # thirds -- [0, 1/3), [1/3, 1]
        t0, t1 = _window_bounds(1, 2, 3)
        assert (t0, t1) == (0.0, pytest.approx(1 / 3))
        t0, t1 = _window_bounds(2, 2, 3)
        assert (t0, t1) == (pytest.approx(1 / 3), 1.0)

    def test_consumer_eagerer_than_producer_gets_empty_gaps(self):
        # producer granularity 2, consumer pace 4: two of the four
        # windows are empty
        widths = [
            _window_bounds(i, 4, 2)[1] - _window_bounds(i, 4, 2)[0]
            for i in range(1, 5)
        ]
        assert widths.count(0.0) == 2
        assert sum(widths) == pytest.approx(1.0)

    def test_windows_partition_unit_interval(self):
        for pace in (1, 3, 7):
            for granularity in (None, 2, 5, 12):
                boundaries = [
                    _window_bounds(i, pace, granularity) for i in range(1, pace + 1)
                ]
                assert boundaries[0][0] == 0.0
                assert boundaries[-1][1] == pytest.approx(1.0)
                for (_, prev_hi), (lo, _) in zip(boundaries, boundaries[1:]):
                    assert prev_hi == pytest.approx(lo)


class TestPerturbStats:
    @pytest.fixture()
    def calibrated_plan(self):
        catalog = make_toy_catalog(seed=71)
        queries = [toy_query_total(catalog, 0), toy_query_region(catalog, 1)]
        plan = MQOOptimizer(catalog).build_shared_plan(queries)
        calibrate_plan(plan)
        return plan

    def test_perturbation_changes_estimates(self, calibrated_plan):
        before = [
            dict(node.stats.filter_sel_per_q)
            for subplan in calibrated_plan.subplans
            for node in subplan.root.walk()
        ]
        perturb_stats(calibrated_plan, seed=3)
        after = [
            dict(node.stats.filter_sel_per_q)
            for subplan in calibrated_plan.subplans
            for node in subplan.root.walk()
        ]
        assert before != after

    def test_selectivities_stay_in_unit_range(self, calibrated_plan):
        perturb_stats(calibrated_plan, seed=3, low=0.1, high=5.0)
        for subplan in calibrated_plan.subplans:
            for node in subplan.root.walk():
                for sel in node.stats.filter_sel_per_q.values():
                    assert 0.0 <= sel <= 1.0

    def test_group_counts_stay_positive_and_bounded(self, calibrated_plan):
        perturb_stats(calibrated_plan, seed=3, low=0.01, high=0.2)
        for subplan in calibrated_plan.subplans:
            for node in subplan.root.walk():
                stats = node.stats
                assert stats.groups_union >= 1.0 or stats.kind != "aggregate"
                for groups in stats.groups_per_q.values():
                    assert 1.0 <= groups <= stats.groups_union

    def test_deterministic_for_a_seed(self):
        def snapshot(seed):
            catalog = make_toy_catalog(seed=71)
            queries = [toy_query_total(catalog, 0)]
            plan = MQOOptimizer(catalog).build_shared_plan(queries)
            calibrate_plan(plan)
            perturb_stats(plan, seed=seed)
            return [
                (node.stats.join_out, node.stats.groups_union)
                for subplan in plan.subplans
                for node in subplan.root.walk()
            ]

        assert snapshot(9) == snapshot(9)
        assert snapshot(9) != snapshot(10)


class TestTpchQueryShapes:
    """Structural expectations on individual TPC-H query plans."""

    @pytest.fixture(scope="class")
    def catalog(self):
        return generate_catalog(scale=0.1, seed=2)

    def test_q15_revenue_view_is_consumed_twice(self, catalog):
        from repro.mqo.nodes import SubplanRef

        query = build_query(catalog, "Q15", 0)
        plan = MQOOptimizer(catalog).build_shared_plan([query])
        # the revenue view materializes once and feeds MAX + the value
        # join -- two source leaves reading the same buffer
        reads = {}
        for subplan in plan.subplans:
            for node in subplan.root.source_nodes():
                if isinstance(node.ref, SubplanRef):
                    sid = node.ref.subplan.sid
                    reads[sid] = reads.get(sid, 0) + 1
        assert max(reads.values(), default=0) >= 2, (
            "Q15's revenue view must be read twice from its buffer"
        )

    def test_q17_scans_lineitem_twice(self, catalog):
        query = build_query(catalog, "Q17", 0)
        node = canonicalize(query.root)
        lineitem_scans = [
            n for n in node.walk() if n.kind == "scan" and n.payload == "lineitem"
        ]
        assert len(lineitem_scans) == 2  # the correlated-subquery self-join

    def test_q13_has_two_level_aggregation(self, catalog):
        query = build_query(catalog, "Q13", 0)
        node = canonicalize(query.root)
        aggs = [n for n in node.walk() if n.kind == "aggregate"]
        assert len(aggs) == 2

    @pytest.mark.parametrize("name,tables", [
        ("Q3", {"customer", "orders", "lineitem"}),
        ("Q5", {"customer", "orders", "lineitem", "supplier", "nation", "region"}),
        ("Q11", {"partsupp", "supplier", "nation"}),
        ("Q14", {"lineitem", "part"}),
    ])
    def test_expected_tables(self, catalog, name, tables):
        query = build_query(catalog, name, 0)
        node = canonicalize(query.root)
        scanned = {n.payload for n in node.walk() if n.kind == "scan"}
        assert scanned == tables


class TestStreamConfigValidation:
    def test_defaults_are_valid(self):
        config = StreamConfig()
        assert config.load_seconds > 0 and config.work_rate > 0

    @pytest.mark.parametrize("kwargs", [
        {"load_seconds": 0.0},
        {"load_seconds": -5.0},
        {"work_rate": 0.0},
        {"work_rate": -1.0},
        {"execution_overhead": -0.1},
        {"state_factor": -0.3},
    ])
    def test_invalid_values_rejected(self, kwargs):
        with pytest.raises(ValueError):
            StreamConfig(**kwargs)

    def test_zero_state_factor_and_overhead_allowed(self):
        config = StreamConfig(execution_overhead=0.0, state_factor=0.0)
        assert config.state_factor == 0.0

    def test_repr_shows_state_factor_and_compaction(self):
        text = repr(StreamConfig(state_factor=0.25, compact_buffers=False))
        assert "state_factor=0.25" in text
        assert "compact_buffers=False" in text
