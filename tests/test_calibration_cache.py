"""Calibration cache: hit fidelity, invalidation, end-to-end warm runs."""

import pytest

from repro.core.optimizer import OptimizerConfig
from repro.cost.cache import (
    CalibrationCache,
    calibration_key,
    get_default_cache,
    plan_signature,
    set_default_cache,
)
from repro.engine.calibrate import calibrate_plan, calibration_execution_count
from repro.engine.stream import StreamConfig
from repro.harness.runner import ExperimentRunner
from repro.mqo.merge import MQOOptimizer, build_unshared_plan
from repro.workloads.constraints import uniform_constraints

from .util import make_toy_catalog, toy_query_region, toy_query_total

_STAT_FIELDS = (
    "kind", "scanned_total", "kept_total", "kept_per_q", "filter_sel_per_q",
    "in_left", "in_right", "in_left_per_q", "in_right_per_q", "join_out",
    "join_out_per_q", "agg_in", "agg_in_per_q", "groups_union", "groups_per_q",
    "agg_out", "has_minmax",
)


def _build(seed=31):
    catalog = make_toy_catalog(seed=seed)
    queries = [toy_query_total(catalog, 0), toy_query_region(catalog, 1)]
    return catalog, queries


def _shared_plan(catalog, queries):
    return MQOOptimizer(catalog).build_shared_plan(queries)


def _all_stats(plan):
    return [
        node.stats
        for subplan in plan.topological_order()
        for node in subplan.root.walk()
    ]


@pytest.fixture()
def cache(tmp_path):
    return CalibrationCache(str(tmp_path / "calib"))


@pytest.fixture(autouse=True)
def _no_default_cache():
    """Keep the process-wide default cache off for the rest of the suite."""
    previous = get_default_cache()
    set_default_cache(None)
    yield
    set_default_cache(previous)


class TestCacheHitFidelity:
    def test_warm_run_returns_identical_calibration(self, cache):
        catalog, queries = _build()
        plan = _shared_plan(catalog, queries)
        config = StreamConfig()
        cold = calibrate_plan(plan, config, cache=cache)
        assert cache.stores == 1 and cache.hits == 0

        catalog2, queries2 = _build()
        plan2 = _shared_plan(catalog2, queries2)
        before = calibration_execution_count()
        warm = calibrate_plan(plan2, config, cache=cache)
        assert calibration_execution_count() == before  # no recalibration
        assert cache.hits == 1

        assert warm.query_batch_work == cold.query_batch_work
        assert warm.query_batch_latency == cold.query_batch_latency
        assert warm.run.total_work == pytest.approx(cold.run.total_work)
        for cold_stats, warm_stats in zip(_all_stats(plan), _all_stats(plan2)):
            for field in _STAT_FIELDS:
                assert getattr(cold_stats, field) == getattr(warm_stats, field), field

    def test_unshared_and_shared_plans_key_differently(self, cache):
        catalog, queries = _build()
        shared = _shared_plan(catalog, queries)
        unshared = build_unshared_plan(catalog, queries)
        config = StreamConfig()
        assert calibration_key(shared, config) != calibration_key(unshared, config)

    def test_plan_signature_stable_across_rebuilds(self):
        catalog, queries = _build()
        catalog2, queries2 = _build()
        assert plan_signature(_shared_plan(catalog, queries)) == plan_signature(
            _shared_plan(catalog2, queries2)
        )


class TestCacheInvalidation:
    def test_catalog_content_change_misses(self, cache):
        catalog, queries = _build()
        plan = _shared_plan(catalog, queries)
        config = StreamConfig()
        calibrate_plan(plan, config, cache=cache)

        catalog2, queries2 = _build()
        catalog2.get("events").append((0, 5.0, 1, "buy"))
        plan2 = _shared_plan(catalog2, queries2)
        calibrate_plan(plan2, config, cache=cache)
        assert cache.hits == 0
        assert cache.stores == 2

    def test_query_batch_change_misses(self, cache):
        catalog, queries = _build()
        config = StreamConfig()
        calibrate_plan(_shared_plan(catalog, queries), config, cache=cache)

        catalog2, _ = _build()
        other = [toy_query_total(catalog2, 0)]  # dropped the region query
        calibrate_plan(_shared_plan(catalog2, other), config, cache=cache)
        assert cache.hits == 0

    def test_stream_config_change_misses(self, cache):
        catalog, queries = _build()
        plan = _shared_plan(catalog, queries)
        calibrate_plan(plan, StreamConfig(), cache=cache)
        calibrate_plan(plan, StreamConfig(state_factor=0.7), cache=cache)
        assert cache.hits == 0
        assert cache.misses == 2

    def test_clear_empties_the_store(self, cache):
        catalog, queries = _build()
        plan = _shared_plan(catalog, queries)
        config = StreamConfig()
        calibrate_plan(plan, config, cache=cache)
        cache.clear()
        calibrate_plan(_shared_plan(*_build()), config, cache=cache)
        assert cache.hits == 0


class TestWarmExperimentRuns:
    def test_warm_rerun_performs_no_recalibration(self, cache):
        relative = uniform_constraints(range(2), 0.5)
        config = OptimizerConfig(max_pace=5)
        set_default_cache(cache)

        catalog, queries = _build()
        cold = ExperimentRunner(catalog, queries, config).run_all(relative)

        before = calibration_execution_count()
        catalog2, queries2 = _build()
        warm = ExperimentRunner(catalog2, queries2, config).run_all(relative)
        assert calibration_execution_count() == before
        assert cache.hits > 0

        for cold_result, warm_result in zip(cold, warm):
            assert cold_result.total_work == warm_result.total_work
            assert cold_result.missed.row() == warm_result.missed.row()
            assert cold_result.goals_seconds == warm_result.goals_seconds

    def test_no_cache_still_recalibrates(self):
        relative = uniform_constraints(range(2), 0.5)
        config = OptimizerConfig(max_pace=5)
        catalog, queries = _build()
        before = calibration_execution_count()
        ExperimentRunner(catalog, queries, config).run_all(
            relative, names=("iShare",)
        )
        assert calibration_execution_count() > before
