"""Fuzzer self-tests: determinism, oracle soundness, injected-bug detection.

The differential fuzzer is itself guarded code: these tests prove that
the case stream is deterministic, that a healthy engine fuzzes green,
and -- via a known bug injected behind a test-only toggle
(:mod:`repro.physical.faults`) -- that the oracles detect a real
divergence within a bounded case budget and the shrinker reduces it to
a minimal repro.
"""

import json

from repro.errors import ReproError
from repro.fuzz import generate_case, run_campaign, shrink
from repro.fuzz.cli import _is_failing, case_verdict, main
from repro.fuzz.corpus import load_case, save_case
from repro.fuzz.oracles import run_case
from repro.physical.faults import FAULTS, inject_fault


class TestGrammarDeterminism:
    def test_same_seed_same_case_stream(self):
        first = [generate_case(11, index) for index in range(15)]
        second = [generate_case(11, index) for index in range(15)]
        assert first == second

    def test_different_seeds_differ(self):
        assert generate_case(0, 3) != generate_case(1, 3)

    def test_cases_are_json_native(self):
        case = generate_case(4, 2)
        assert json.loads(json.dumps(case)) == case

    def test_same_seed_same_verdicts(self):
        for index in range(6):
            case = generate_case(2, index)
            first = run_case(case)
            second = run_case(case)
            assert first.status == second.status
            assert first.failures == second.failures


class TestHealthyEngineFuzzesGreen:
    def test_small_campaign_is_green(self):
        result = run_campaign(0, 25)
        assert result.cases_run == 25
        assert result.failures == []

    def test_inconsistent_case_is_rejected_with_context(self):
        # a case every oracle rejects for the same reason is noise, not
        # a bug -- and the per-oracle errors carry fuzz provenance
        case = generate_case(3, 0)
        case["queries"][0]["filters"] = [["f_nope", "<", 1]]
        report = run_case(case, case_path="/tmp/bad-case.json")
        assert report.status == "rejected"
        assert report.ok
        for outcome in report.oracles.values():
            assert isinstance(outcome.error, ReproError)
            assert outcome.error.fuzz_seed == 3
            assert outcome.error.fuzz_case_path == "/tmp/bad-case.json"


class TestInjectedBugDetection:
    """The fault toggle plants a known bug; the fuzzer must find it."""

    BUDGET = 40

    def test_detected_within_bounded_case_budget(self):
        with inject_fault(drop_agg_retraction=True):
            result = run_campaign(0, self.BUDGET)
        assert result.failures, (
            "injected drop_agg_retraction bug not detected in %d cases"
            % self.BUDGET
        )
        first = result.failures[0]
        assert any(
            "diverges from reference" in line or "hotpath" in line
            for line in first.failures
        )

    def test_shrinker_minimizes_to_tiny_repro(self):
        with inject_fault(drop_agg_retraction=True):
            case = next(
                candidate
                for candidate in (
                    generate_case(0, index) for index in range(self.BUDGET)
                )
                if _is_failing(candidate)
            )
            small = shrink(case, _is_failing)
            assert _is_failing(small), "shrunk case no longer fails"
        assert len(small["tables"]) <= 2
        assert len(small["queries"]) <= 2
        assert sum(len(t["rows"]) for t in small["tables"]) <= len(
            case["tables"][0]["rows"]
        )
        # and without the fault the minimized case is clean
        report = run_case(small)
        assert report.status == "ok"

    def test_fault_flag_restored_after_context(self):
        assert not FAULTS.drop_agg_retraction
        with inject_fault(drop_agg_retraction=True):
            assert FAULTS.drop_agg_retraction
        assert not FAULTS.drop_agg_retraction


class TestCampaignCli:
    def test_green_campaign_exits_zero(self, tmp_path, capsys):
        status = main(
            ["--seed", "0", "--cases", "8", "--failures-dir",
             str(tmp_path / "failures"), "--progress-every", "0"]
        )
        assert status == 0
        out = capsys.readouterr().out
        assert "8 cases" in out
        assert not (tmp_path / "failures").exists()

    def test_failing_campaign_dumps_case_with_replay_command(
        self, tmp_path, capsys
    ):
        failures_dir = tmp_path / "failures"
        with inject_fault(drop_agg_retraction=True):
            status = main(
                ["--seed", "0", "--cases", "3", "--shrink",
                 "--failures-dir", str(failures_dir), "--progress-every", "0"]
            )
        assert status == 1
        saved = sorted(p.name for p in failures_dir.glob("*.json"))
        assert any(name.startswith("case-") for name in saved)
        assert any(name.startswith("minimized-") for name in saved)
        out = capsys.readouterr().out
        assert "replay: python -m repro.fuzz --replay" in out
        # the dump is self-contained: loading it back yields the case
        path = next(iter(failures_dir.glob("case-*.json")))
        document = json.loads(path.read_text())
        assert document["replay"].endswith(str(path))
        assert load_case(str(path)) == generate_case(0, document["index"])

    def test_replay_of_saved_case(self, tmp_path, capsys):
        path = tmp_path / "case.json"
        save_case(generate_case(0, 1), str(path))
        status = main(["--replay", str(path)])
        assert status == 0
        assert "ok" in capsys.readouterr().out


class TestCaseVerdictCrashHandling:
    def test_crash_becomes_failure_line_not_abort(self, monkeypatch):
        from repro.fuzz import oracles as oracles_mod

        def boom(case, case_path=None):
            raise RuntimeError("engine exploded")

        monkeypatch.setattr(oracles_mod, "run_case", boom)
        # cli.case_verdict resolves run_case through the oracles module
        report, lines = case_verdict(generate_case(0, 0))
        assert report is None
        assert lines == ["crash: RuntimeError: engine exploded"]
