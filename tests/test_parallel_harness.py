"""Parallel experiment harness: serial/parallel equality, ordering, timings."""

import pickle

import pytest

from repro import obs
from repro.core.optimizer import OptimizerConfig
from repro.engine.stream import StreamConfig
from repro.errors import ExecutionError
from repro.harness.experiments import _uniform_sweep, fig11
from repro.harness.parallel import (
    CellOutcome,
    ExperimentCell,
    WorkerTraceback,
    _CapturedError,
    resolve_jobs,
    run_cells,
    timing_report,
)
from repro.harness.runner import APPROACHES, ExperimentRunner
from repro.workloads.constraints import uniform_constraints

from .util import (
    make_toy_catalog,
    toy_query_max,
    toy_query_region,
    toy_query_total,
)


def _four_query_runner():
    """A small 4-query batch over the toy star schema."""
    catalog = make_toy_catalog(seed=23)
    queries = [
        toy_query_total(catalog, 0),
        toy_query_region(catalog, 1, region="EU"),
        toy_query_max(catalog, 2),
        toy_query_region(catalog, 3, region="US"),
    ]
    config = OptimizerConfig(max_pace=6, stream_config=StreamConfig())
    return ExperimentRunner(catalog, queries, config)


def _result_fingerprint(result):
    """Everything an experiment report consumes from one approach result."""
    return (
        result.name,
        result.total_work,
        result.total_seconds,
        tuple(sorted(result.goals_seconds.items())),
        tuple(result.missed.absolute),
        tuple(result.missed.relative),
    )


class TestResolveJobs:
    def test_explicit_values_pass_through(self):
        assert resolve_jobs(1) == 1
        assert resolve_jobs(4) == 4

    def test_zero_and_none_mean_all_cores(self):
        assert resolve_jobs(0) >= 1
        assert resolve_jobs(None) >= 1

    def test_negative_clamps_to_one(self):
        assert resolve_jobs(-3) == 1


class TestRunCellsEquality:
    def test_parallel_matches_serial_on_four_query_batch(self):
        runner = _four_query_runner()
        relative = uniform_constraints(range(4), 0.5)
        cells = [ExperimentCell(name, relative) for name in APPROACHES]
        serial = run_cells(runner, cells, jobs=1)
        parallel = run_cells(runner, cells, jobs=2)
        assert [o.key for o in serial] == [o.key for o in parallel]
        for ser, par in zip(serial, parallel):
            assert _result_fingerprint(ser.result) == _result_fingerprint(par.result)

    def test_run_all_parallel_matches_serial(self):
        runner = _four_query_runner()
        relative = uniform_constraints(range(4), 0.2)
        serial = runner.run_all(relative)
        parallel = runner.run_all(relative, jobs=2)
        assert [r.name for r in serial] == list(APPROACHES)
        for ser, par in zip(serial, parallel):
            assert _result_fingerprint(ser) == _result_fingerprint(par)

    def test_outcomes_preserve_submission_order_and_keys(self):
        runner = _four_query_runner()
        relative = uniform_constraints(range(4), 1.0)
        cells = [
            ExperimentCell(name, relative, key=(level, name))
            for level in (1.0, 0.5)
            for name in ("iShare", "NoShare-Uniform")
        ]
        outcomes = run_cells(runner, cells, jobs=3)
        assert [o.key for o in outcomes] == [c.key for c in cells]
        assert all(isinstance(o, CellOutcome) for o in outcomes)
        assert all(o.wall_seconds >= 0 for o in outcomes)


class TestUniformSweepParallel:
    def test_sweep_rows_and_missed_identical(self):
        kwargs = dict(
            names=None, title="sweep", scale=0.12, max_pace=6,
            levels=(1.0, 0.2), config=None,
        )
        # the toy TPC-H sharing-friendly subset keeps this fast
        from repro.workloads.tpch import SHARING_FRIENDLY

        kwargs["names"] = SHARING_FRIENDLY[:4]
        serial = _uniform_sweep(jobs=1, **kwargs)
        parallel = _uniform_sweep(jobs=2, **kwargs)
        assert serial.tables == parallel.tables
        for (s_label, s_by), (p_label, p_by) in zip(
            serial.data["rows"], parallel.data["rows"]
        ):
            assert s_label == p_label
            for name in APPROACHES:
                assert _result_fingerprint(s_by[name]) == _result_fingerprint(
                    p_by[name]
                )
        for name in APPROACHES:
            assert (
                serial.data["missed"][name].row()
                == parallel.data["missed"][name].row()
            )

    def test_timings_recorded_per_cell(self):
        from repro.workloads.tpch import SHARING_FRIENDLY

        result = _uniform_sweep(
            SHARING_FRIENDLY[:2], "sweep", 0.12, 6, (1.0,), None, jobs=2
        )
        timings = result.data["timings"]
        assert timings["jobs"] == 2
        assert len(timings["cells"]) == len(APPROACHES)
        assert timings["wall_seconds"] > 0
        assert timings["cell_seconds_total"] > 0
        assert all(cell["seconds"] > 0 for cell in timings["cells"])


class TestFig11Parallel:
    def test_fig11_parallel_equals_serial(self):
        serial = fig11(scale=0.12, max_pace=6, levels=(0.5,), jobs=1)
        parallel = fig11(scale=0.12, max_pace=6, levels=(0.5,), jobs=2)
        # identical total work per approach and identical missed rows
        assert serial.tables == parallel.tables
        for name in APPROACHES:
            s_missed = serial.data["missed"][name]
            p_missed = parallel.data["missed"][name]
            assert s_missed.absolute == p_missed.absolute
            assert s_missed.relative == p_missed.relative
            (_, s_by), (_, p_by) = serial.data["rows"][0], parallel.data["rows"][0]
            assert s_by[name].total_work == p_by[name].total_work


class TestWorkerErrorPropagation:
    """ReproErrors raised in workers arrive in the driver verbatim."""

    def test_captured_error_survives_pickling_with_enrichment(self):
        try:
            raise ExecutionError("boom").attach_fuzz_context(
                seed=42, case_path="/tmp/case-000.json"
            )
        except ExecutionError as exc:
            captured = _CapturedError(exc)
        captured = pickle.loads(pickle.dumps(captured))  # the pool boundary
        rebuilt = captured.rebuild()
        assert type(rebuilt) is ExecutionError
        assert rebuilt.args == ("boom",)
        assert rebuilt.fuzz_seed == 42
        assert rebuilt.fuzz_case_path == "/tmp/case-000.json"
        assert "fuzz seed 42" in str(rebuilt)
        assert "case /tmp/case-000.json" in str(rebuilt)
        assert "boom" in captured.traceback_text

    def test_worker_repro_error_reraised_with_type_and_traceback(self):
        runner = _four_query_runner()
        relative = uniform_constraints(range(4), 0.5)
        cells = [
            ExperimentCell("NoShare-Uniform", relative, key="good"),
            # a pace override missing every subplan: the worker-side
            # executor raises ExecutionError("no pace for subplan ...")
            ExperimentCell("NoShare-Uniform", relative, key="bad",
                           pace_override={9999: 1}),
        ]
        with pytest.raises(ExecutionError, match="no pace for subplan") as info:
            run_cells(runner, cells, jobs=2)
        assert isinstance(info.value.__cause__, WorkerTraceback)
        assert "run_approach" in info.value.__cause__.text

    def test_worker_error_propagates_while_observing(self):
        runner = _four_query_runner()
        relative = uniform_constraints(range(4), 0.5)
        cells = [
            ExperimentCell("NoShare-Uniform", relative, key="good"),
            ExperimentCell("NoShare-Uniform", relative, key="bad",
                           pace_override={9999: 1}),
        ]
        obs.enable(process_name="test-driver")
        try:
            with pytest.raises(ExecutionError, match="no pace for subplan"):
                run_cells(runner, cells, jobs=2)
        finally:
            obs.disable()
