"""Slack ledger, shared-work attribution, telemetry exporter, regret report."""

import json
import urllib.error
import urllib.request
from fractions import Fraction

import pytest

from repro import obs
from repro.core.optimizer import OptimizerConfig, optimize_ishare
from repro.engine.stream import StreamConfig
from repro.harness.service import run_service_schedule
from repro.obs import OBS
from repro.obs.attribution import (
    AttributionLedger,
    ConservationError,
    split_work,
)
from repro.obs.declog import DEFAULT_RUN, DecisionLog
from repro.obs.export import (
    TelemetryExporter,
    TelemetryServer,
    TimeSeriesRing,
    extract_dashboard_snapshot,
    regret_report,
    render_dashboard,
    render_prometheus,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.slack import SlackLedger, drift_slope, project_windows_to_miss
from repro.workloads.constraints import uniform_constraints

from .util import make_toy_catalog, toy_query_region, toy_query_total


@pytest.fixture(autouse=True)
def _clean_session():
    obs.disable()
    yield
    obs.disable()


# -- slack ledger -----------------------------------------------------------------


class TestSlackMath:
    def test_drift_slope_fits_a_line(self):
        assert drift_slope([(0, 90.0), (1, 80.0), (2, 70.0)]) == pytest.approx(
            -10.0
        )
        assert drift_slope([(0, 5.0)]) == 0.0
        assert drift_slope([]) == 0.0
        # constant x (degenerate) must not divide by zero
        assert drift_slope([(3, 1.0), (3, 9.0)]) == 0.0

    def test_projection_cases(self):
        assert project_windows_to_miss(70.0, -10.0) == pytest.approx(7.0)
        assert project_windows_to_miss(-1.0, -10.0) == 0.0  # already missing
        assert project_windows_to_miss(70.0, 0.0) is None  # steady
        assert project_windows_to_miss(70.0, 5.0) is None  # recovering


class TestSlackLedger:
    def test_entry_fields_and_eager_breakdown(self):
        ledger = SlackLedger()
        recorded = ledger.record_window(
            0,
            {7: {"goal_work": 100.0, "final_work": 60.0,
                 "eager_final_work": 40.0}},
            seconds=lambda work: work / 10.0,
        )
        entry = recorded[7]
        assert entry["headroom_work"] == pytest.approx(40.0)
        assert entry["missed"] is False
        assert entry["slack_available_work"] == pytest.approx(60.0)
        assert entry["deferred_work"] == pytest.approx(20.0)
        assert entry["slack_utilization"] == pytest.approx(20.0 / 60.0)
        assert entry["goal_seconds"] == pytest.approx(10.0)
        assert entry["headroom_seconds"] == pytest.approx(4.0)

    def test_eagerless_entry_omits_deferral_fields(self):
        ledger = SlackLedger()
        entry = ledger.record_window(
            0, {1: {"goal_work": 10.0, "final_work": 12.0}}
        )[1]
        assert entry["missed"] is True
        assert entry["headroom_work"] == pytest.approx(-2.0)
        assert "deferred_work" not in entry and "slack_utilization" not in entry

    def test_drift_projection_over_windows(self):
        ledger = SlackLedger()
        for window, final in enumerate((10.0, 20.0, 30.0)):
            recorded = ledger.record_window(
                window, {1: {"goal_work": 100.0, "final_work": final}}
            )
        entry = recorded[1]
        assert entry["drift_work_per_window"] == pytest.approx(-10.0)
        assert entry["projected_windows_to_miss"] == pytest.approx(7.0)
        _, summary = ledger.windows[-1]
        assert summary["projected_misses"] == 1
        assert summary["min_headroom_work"] == pytest.approx(70.0)

    def test_history_ring_is_bounded(self):
        ledger = SlackLedger(history=2)
        for window in range(5):
            ledger.record_window(
                window, {1: {"goal_work": 10.0, "final_work": 1.0}}
            )
        assert len(ledger._headroom[1]) == 2
        assert ledger.latest(1) == (4, 9.0)
        with pytest.raises(ValueError):
            SlackLedger(history=1)

    def test_empty_window_summary(self):
        ledger = SlackLedger()
        assert ledger.record_window(0, {}) == {}
        assert ledger.windows[-1][1]["min_headroom_work"] is None


# -- attribution ------------------------------------------------------------------


class TestSplitWork:
    def test_proportional_split_conserves_exactly(self):
        shares = split_work(0.1, [(0, 0.3), (1, 0.2), (2, 0.1)])
        assert sum(shares.values(), Fraction(0)) == Fraction(0.1)
        assert shares[0] > shares[1] > shares[2]

    def test_zero_weights_degrade_to_even_split(self):
        shares = split_work(9.0, [(0, 0.0), (1, -1.0), (2, 0.0)])
        assert set(shares.values()) == {Fraction(3)}
        assert sum(shares.values(), Fraction(0)) == Fraction(9)

    def test_empty_beneficiaries(self):
        assert split_work(5.0, []) == {}

    def test_awkward_floats_still_conserve(self):
        # exactness must hold for arbitrary float work/weight combinations,
        # where naive float proportional splits routinely drop ulps
        for scale in (0.1, 0.7, 123.456, 1e-9, 1e9):
            for count in (2, 3, 7, 11):
                weights = [(i, scale * 0.1 * (i + 1)) for i in range(count)]
                shares = split_work(scale * 0.7, weights)
                assert sum(shares.values(), Fraction(0)) == Fraction(
                    scale * 0.7
                ), (scale, count)


class TestAttributionLedger:
    def _record(self, ledger, window=0):
        return ledger.record_window(
            window,
            {4: 100.0, 5: 10.0, 6: 3.0},
            beneficiaries={4: (0, 1), 5: (1,), 6: ()}.get,
            weight_of=lambda sid, qid: {(4, 0): 3.0, (4, 1): 1.0,
                                        (5, 1): 2.0}.get((sid, qid), 0.0),
            tenant_of={0: "alpha", 1: "beta"}.get,
        )

    def test_shares_follow_solo_cost_weights(self):
        ledger = AttributionLedger()
        shares = self._record(ledger)
        assert shares[0] == Fraction(75)
        assert shares[1] == Fraction(25) + Fraction(10)
        # sid 6 serves nobody: its work is not billed
        assert sum(shares.values(), Fraction(0)) == Fraction(110)
        assert ledger.check_conservation() == []

    def test_tenant_totals_accumulate_exactly(self):
        ledger = AttributionLedger()
        self._record(ledger, 0)
        self._record(ledger, 1)
        assert ledger.tenant_totals["alpha"] == Fraction(150)
        assert ledger.tenant_totals["beta"] == Fraction(70)
        payload = ledger.to_dict()
        assert payload["conserved"] is True
        assert payload["tenant_totals"]["alpha"] == 150.0

    def test_tampered_totals_fail_conservation(self):
        ledger = AttributionLedger()
        self._record(ledger)
        ledger.query_totals[0] += Fraction(1, 3)
        failures = ledger.check_conservation()
        assert failures and "query 0" in failures[0]

    def test_window_shares_float_view(self):
        ledger = AttributionLedger()
        self._record(ledger, window=3)
        window, shares = ledger.window_shares()
        assert window == 3
        assert shares[0] == 75.0 and isinstance(shares[0], float)

    def test_recording_a_leak_raises(self):
        class Leaky(AttributionLedger):
            pass

        ledger = Leaky()
        # weight_of returning NaN-ish behaviour can't happen via split_work;
        # simulate a leak by monkeypatching split_work's result path instead:
        # an sid whose beneficiaries change between split and bill.
        with pytest.raises(ConservationError):
            calls = []

            def beneficiaries(sid):
                calls.append(sid)
                return (0,)

            original = split_work

            def bad_split(work, weights):
                shares = original(work, weights)
                return {qid: share / 2 for qid, share in shares.items()}

            import repro.obs.attribution as attribution_module

            attribution_module.split_work, saved = (
                bad_split, attribution_module.split_work
            )
            try:
                ledger.record_window(
                    0, {1: 8.0}, beneficiaries, lambda sid, qid: 1.0
                )
            finally:
                attribution_module.split_work = saved


# -- prometheus rendering ---------------------------------------------------------


class TestPrometheus:
    def test_counter_gauge_histogram_families(self):
        registry = MetricsRegistry()
        registry.counter("engine.executions", sid=3).inc(7)
        registry.gauge("queue.depth").set(4)
        registry.gauge("queue.depth").set(2)
        registry.histogram("engine.work").observe(1.5)
        registry.histogram("engine.work").observe(30.0)
        text = render_prometheus(registry.snapshot())
        assert "# TYPE repro_engine_executions counter" in text
        assert 'repro_engine_executions{sid="3"} 7' in text
        assert "repro_queue_depth 2" in text
        assert "repro_queue_depth_max 4" in text
        assert 'repro_engine_work_bucket{le="2.0"} 1' in text
        assert 'repro_engine_work_bucket{le="+Inf"} 2' in text
        assert "repro_engine_work_sum 31.5" in text
        assert "repro_engine_work_count 2" in text

    def test_bucket_series_is_cumulative(self):
        registry = MetricsRegistry()
        for value in (1.5, 1.5, 30.0):
            registry.histogram("work").observe(value)
        text = render_prometheus(registry.snapshot())
        lines = [l for l in text.splitlines() if "_bucket" in l]
        counts = [int(l.rsplit(" ", 1)[1]) for l in lines]
        assert counts == sorted(counts)  # monotone running totals
        assert counts[-1] == 3

    def test_extra_gauges_and_special_values(self):
        text = render_prometheus(
            {}, extra_gauges={
                "service.summary.total_work": 12.5,
                "service.query.headroom_work{query=1}": None,
                "service.inc": float("inf"),
            }
        )
        assert "repro_service_summary_total_work 12.5" in text
        assert 'repro_service_query_headroom_work{query="1"} NaN' in text
        assert "repro_service_inc +Inf" in text


# -- time series + exporter -------------------------------------------------------


def _fake_report():
    window = {
        "window": 0,
        "total_work": 110.0,
        "queries": {"0": {"final_work": 75.0, "missed_seconds": 0.0}},
        "tenants": {"alpha": {"work": 75.0, "queries": 1, "slo_misses": 0}},
        "slack": {
            "0": {
                "goal_work": 100.0, "final_work": 75.0,
                "headroom_work": 25.0, "missed": False,
                "drift_work_per_window": 0.0,
                "projected_windows_to_miss": None,
            }
        },
        "attribution": {"conserved": True, "queries": {"0": 75.0}},
    }
    later = dict(window, window=1)
    return {
        "summary": {
            "total_work": 220.0, "query_windows": 2, "slo_misses": 0,
            "slo_miss_rate": 0.0, "work_per_query_window": 110.0,
        },
        "shards": [{"shard": 0, "windows": [window, later]}],
    }


class TestExporter:
    def test_ring_eviction(self):
        ring = TimeSeriesRing(capacity=2)
        for x in range(5):
            ring.append(x, float(x))
        assert ring.samples == [(3, 3.0), (4, 4.0)]
        assert ring.dropped == 3
        with pytest.raises(ValueError):
            TimeSeriesRing(capacity=0)

    def test_snapshot_collects_series_slack_attribution(self):
        exporter = TelemetryExporter()
        exporter.ingest_report(_fake_report())
        snap = exporter.snapshot()
        series = snap["series"]["service.window.total_work{shard=0}"]
        assert series["samples"] == [[0, 110.0], [1, 110.0]]
        assert snap["slack"]["0/0"]["headroom_work"] == 25.0
        assert snap["attribution"]["conserved"] is True
        assert snap["attribution"]["tenants"]["alpha"] == 150.0

    def test_prometheus_carries_summary_gauges(self):
        exporter = TelemetryExporter()
        exporter.ingest_report(_fake_report())
        exporter.ingest_declog([])
        text = exporter.prometheus()
        assert "repro_service_summary_total_work 220.0" in text
        assert (
            'repro_service_query_headroom_work{query="0",shard="0"} 25.0'
            in text
        )
        assert 'repro_service_tenant_attributed_work{tenant="alpha"} 150.0' in text
        assert "repro_service_attribution_conserved 1" in text
        assert "repro_service_regret_decisions 0" in text

    def test_unconserved_window_flips_the_flag(self):
        report = _fake_report()
        report["shards"][0]["windows"][1]["attribution"]["conserved"] = False
        exporter = TelemetryExporter().ingest_report(report)
        assert exporter.snapshot()["attribution"]["conserved"] is False
        assert "repro_service_attribution_conserved 0" in exporter.prometheus()


class TestDashboard:
    def test_round_trip_recovers_exact_snapshot(self):
        exporter = TelemetryExporter()
        exporter.ingest_report(_fake_report())
        exporter.ingest_declog([])
        snap = exporter.snapshot()
        html = render_dashboard(snap)
        assert extract_dashboard_snapshot(html) == snap
        assert "Slack ledger" in html and "alpha" in html

    def test_embedded_script_closers_are_escaped(self):
        snap = {"summary": {"note": "</script><script>alert(1)</script>"}}
        html = render_dashboard(snap)
        assert "</script><script>alert" not in html
        assert extract_dashboard_snapshot(html) == snap


# -- regret report ----------------------------------------------------------------


def _searched_log():
    log = DecisionLog()
    log.set_run("shard-0")
    log.log("pace_reject", iteration=1, group=[2], incrementability=8.0,
            extra_work=50.0, reason="outscored")
    log.log("pace_move", iteration=1, group=[1], incrementability=10.0,
            extra_work=100.0, total_work=1000.0)
    log.log("pace_search_done", iterations=1, met=True, total_work=1000.0)
    return log


class TestRegretReport:
    def test_no_feedback_means_zero_regret(self):
        report = regret_report(_searched_log().records)
        assert report["covered_seqs"] == [1, 2, 3]
        assert report["switched"] == 0
        assert report["total_regret_work"] == 0.0
        [decision] = report["decisions"]
        assert decision["chosen_group"] == decision["oracle_group"] == [1]
        [search] = report["searches"]
        assert search["event"] == "pace_search_done" and search["met"] is True

    def test_measured_factors_can_switch_the_oracle(self):
        # sid 1 measured 4x its estimate: the chosen move's real inc drops
        # to 2.5 and its real extra work rises to 400; the rejected group
        # [2] (factor 1.0) becomes the oracle with 350 work of regret
        report = regret_report(
            _searched_log().records,
            feedback_by_run={"shard-0": {1: (4.0, 1.0), 2: (1.0, 1.0)}},
        )
        [decision] = report["decisions"]
        assert decision["switched"] is True
        assert decision["oracle_group"] == [2]
        assert decision["regret_work"] == pytest.approx(350.0)
        assert report["total_regret_work"] == pytest.approx(350.0)
        chosen = next(c for c in decision["candidates"] if c["chosen"])
        assert chosen["corrected_incrementability"] == pytest.approx(2.5)
        assert chosen["corrected_extra_work"] == pytest.approx(400.0)

    def test_factors_keyed_by_string_sid_resolve(self):
        # shard reports serialize feedback sids as JSON strings
        report = regret_report(
            _searched_log().records,
            feedback_by_run={"shard-0": {"1": [4.0, 1.0], "2": [1.0, 1.0]}},
        )
        assert report["switched"] == 1

    def test_infinite_incrementability_survives_correction(self):
        log = DecisionLog()
        log.log("pace_move", iteration=1, group=[1], incrementability="inf",
                extra_work=0.0, total_work=10.0)
        report = regret_report(log.records, feedback={1: (5.0, 1.0)})
        [decision] = report["decisions"]
        assert decision["switched"] is False

    def test_orphan_rejects_and_decreases_are_covered(self):
        log = DecisionLog()
        log.log("pace_reject", iteration=9, group=[3], incrementability=1.0,
                extra_work=5.0, reason="outscored")
        log.log("pace_decrease", sid=3, pace=2, incrementability=1.0,
                work_saved=4.0, total_work=90.0)
        log.log("pace_exhausted", iteration=9, unmet_queries=[1], skipped=0)
        report = regret_report(log.records)
        kinds = sorted(d["kind"] for d in report["decisions"])
        assert kinds == ["decrease", "orphan_reject"]
        assert report["covered_seqs"] == [1, 2, 3]
        assert all(d["regret_work"] == 0.0 for d in report["decisions"])

    def test_real_search_is_fully_covered(self):
        catalog = make_toy_catalog(seed=7)
        queries = [
            toy_query_total(catalog, 0),
            toy_query_region(catalog, 1, region="EU"),
        ]
        obs.enable()
        optimize_ishare(
            catalog, queries, uniform_constraints(range(2), 0.4),
            OptimizerConfig(max_pace=6, stream_config=StreamConfig()),
        )
        records = OBS.declog.records
        pace_seqs = [
            r["seq"] for r in records if r["event"].startswith("pace_")
        ]
        report = regret_report(records)
        assert pace_seqs  # the search really ran
        assert report["covered_seqs"] == pace_seqs


# -- decision log run ids ---------------------------------------------------------


class TestRunIds:
    def test_set_run_brackets_and_restores(self):
        log = DecisionLog()
        log.log("a")
        previous = log.set_run("shard-1")
        assert previous == DEFAULT_RUN
        log.log("b")
        log.set_run(previous)
        log.log("c")
        assert [r["run"] for r in log.records] == ["main", "shard-1", "main"]
        assert [r["seq"] for r in log.records] == [1, 2, 3]

    def test_extend_preserves_worker_run_stamps(self):
        driver, worker = DecisionLog(), DecisionLog(run_id="shard-2")
        worker.log("pace_move", sid=9)
        worker.records.append({"event": "legacy"})  # pre-run-id record
        driver.extend(worker.records)
        assert driver.records[0]["run"] == "shard-2"
        assert driver.records[1]["run"] == DEFAULT_RUN
        assert [r["seq"] for r in driver.records] == [1, 2]


# -- HTTP endpoint ----------------------------------------------------------------


class TestTelemetryServer:
    def test_endpoints_serve_the_live_exporter(self):
        exporter = TelemetryExporter()
        exporter.ingest_report(_fake_report())
        exporter.ingest_declog([])
        with TelemetryServer(exporter) as server:
            metrics = urllib.request.urlopen(server.url + "/metrics")
            assert metrics.headers["Content-Type"].startswith("text/plain")
            assert b"repro_service_summary_total_work" in metrics.read()

            snap = json.load(
                urllib.request.urlopen(server.url + "/snapshot.json")
            )
            assert snap == json.loads(
                json.dumps(exporter.snapshot())
            )

            html = urllib.request.urlopen(server.url + "/").read().decode()
            assert extract_dashboard_snapshot(html) == snap

            with pytest.raises(urllib.error.HTTPError) as err:
                urllib.request.urlopen(server.url + "/nope")
            assert err.value.code == 404
        server.stop()  # idempotent


# -- end-to-end over the sharded service ------------------------------------------

E2E_SCHEDULE = {
    "workload": {"scale": 0.04, "seed": 100},
    "window_seconds": 60.0,
    "windows": 2,
    "shards": 1,
    "max_pace": 4,
    "admission": "reject",
    "events": [
        {"at": 0.0, "op": "register", "query_id": 0, "tenant": "alpha",
         "query": "Q1", "goal": 5.0},
        {"at": 5.0, "op": "register", "query_id": 1, "tenant": "beta",
         "query": "Q6", "goal": 5.0},
    ],
}


class TestServiceTelemetryEndToEnd:
    def test_exporter_over_a_real_service_run(self):
        obs.enable(process_name="test-telemetry")
        report = run_service_schedule(E2E_SCHEDULE, jobs=1)
        exporter = TelemetryExporter()
        exporter.ingest_report(report)
        exporter.ingest_metrics(OBS.metrics.snapshot())
        feedback_by_run = {
            "shard-%d" % sr["shard"]: sr.get("feedback", {})
            for sr in report["shards"]
        }
        exporter.ingest_declog(
            OBS.declog.records, feedback_by_run=feedback_by_run
        )
        snap = exporter.snapshot()

        # slack: every query of every window reported, latest kept
        assert set(snap["slack"]) == {"0/0", "0/1"}
        for entry in snap["slack"].values():
            assert {"goal_work", "final_work", "headroom_work",
                    "slack_available_work", "deferred_work"} <= set(entry)

        # attribution conserved, tenants billed
        assert snap["attribution"]["conserved"] is True
        assert set(snap["attribution"]["tenants"]) == {"alpha", "beta"}
        assert report["summary"]["attribution_conserved"] is True

        # regret covers every pace decision the run logged
        pace_seqs = [
            r["seq"] for r in OBS.declog.records
            if r["event"].startswith("pace_")
        ]
        assert snap["regret"]["covered_seqs"] == pace_seqs

        # all three renderings agree on the same snapshot
        assert extract_dashboard_snapshot(render_dashboard(snap)) == \
            json.loads(json.dumps(snap))
        text = exporter.prometheus()
        assert "repro_service_summary_total_work" in text
        assert "repro_service_attribution_conserved 1" in text
