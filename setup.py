"""Legacy setup shim.

Kept so the package installs in offline environments without the
``wheel`` package (``pip install -e . --no-build-isolation --no-use-pep517``).
All metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
